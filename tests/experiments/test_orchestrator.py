"""Campaign orchestrator: dispatch, failure recovery, continuous merge."""

import pytest

from repro.cli import build_orchestrate_parser, main
from repro.experiments import registry
from repro.experiments.orchestrator import (ExecutionStrategy, Orchestrator,
                                            worker_flags)

SMOKE = ["--cluster", "small", "--demands", "4,8"]


def orchestrate_args(*argv):
    return build_orchestrate_parser().parse_args(list(argv))


def smoke_setup(out, *extra):
    """(specs, worker flags) for the small coallocation campaign."""
    args = orchestrate_args("coallocation", *SMOKE, "--out", str(out),
                            *extra)
    specs = registry.get("coallocation").specs(args)
    return specs, worker_flags("coallocation", args)


class TestWorkerFlags:
    def test_forwards_registered_axes_only(self):
        args = orchestrate_args("coallocation", *SMOKE, "--out", "x")
        assert worker_flags("coallocation", args) == (
            "--seed", "0", "--cluster", "small", "--demands", "4,8")

    def test_churn_axes(self):
        args = orchestrate_args("churnload", "--users", "3", "--horizon",
                                "90", "--failures", "0.006", "--out", "x")
        flags = worker_flags("churnload", args)
        assert ("--users", "3") == flags[flags.index("--users"):
                                         flags.index("--users") + 2]
        assert "--horizon" in flags and "--failures" in flags
        # churnload does not consume the demands axis
        assert "--demands" not in flags

    def test_unset_optional_flags_not_forwarded(self):
        args = orchestrate_args("applatency", "--out", "x")
        flags = worker_flags("applatency", args)
        assert flags[:2] == ("--seed", "0")
        assert "--demands" not in flags and "--ratios" not in flags
        assert "--class" in flags  # nas_class always has a value


class HangStrategy(ExecutionStrategy):
    """Workers that never beat and never exit: the stall scenario."""

    def __init__(self):
        self.launched = 0
        self.killed = 0

    def launch(self, task):
        self.launched += 1
        return object()

    def poll(self, handle):
        return None

    def terminate(self, handle):
        self.killed += 1


class FailStrategy(ExecutionStrategy):
    """Workers that crash instantly: the budget-exhaustion scenario."""

    def __init__(self, exit_code=9):
        self.exit_code = exit_code
        self.launched = 0

    def launch(self, task):
        self.launched += 1
        return object()

    def poll(self, handle):
        return self.exit_code

    def terminate(self, handle):
        pass


class TestFailurePaths:
    def test_stalled_worker_is_terminated_and_reported(self, tmp_path):
        specs, flags = smoke_setup(tmp_path / "store")
        strategy = HangStrategy()
        lines = []
        report = Orchestrator(
            "coallocation", specs, tmp_path / "store",
            worker_flags=flags, workers=1, shards=1, retries=0,
            stall_timeout_s=0.2, poll_interval_s=0.05,
            strategy=strategy, echo=lines.append).run()
        assert not report.ok
        assert strategy.killed == 1
        assert "stalled" in report.failed[1]
        assert any("terminated" in line for line in lines)
        # the scratch tree survives a failed campaign for diagnosis
        assert (tmp_path / "store" / ".orchestrate").exists()

    def test_retry_budget_exhaustion_surfaces_per_shard_failure(
            self, tmp_path):
        specs, flags = smoke_setup(tmp_path / "store")
        strategy = FailStrategy(exit_code=9)
        report = Orchestrator(
            "coallocation", specs, tmp_path / "store",
            worker_flags=flags, workers=2, shards=2, retries=1,
            poll_interval_s=0.01, backoff_base_s=0.01,
            strategy=strategy, echo=lambda line: None).run()
        assert not report.ok
        assert set(report.failed) == {1, 2}
        for reason in report.failed.values():
            assert "exited 9" in reason
        # 2 attempts per shard: the first plus one retry each
        assert strategy.launched == 4
        assert report.retries == 2

    def test_zero_exit_with_incomplete_shard_is_retried(self, tmp_path):
        specs, flags = smoke_setup(tmp_path / "store")
        strategy = FailStrategy(exit_code=0)  # exits clean, lands nothing
        report = Orchestrator(
            "coallocation", specs, tmp_path / "store",
            worker_flags=flags, workers=1, shards=1, retries=1,
            poll_interval_s=0.01, backoff_base_s=0.01,
            strategy=strategy, echo=lambda line: None).run()
        assert not report.ok
        assert "incomplete" in report.failed[1]

    def test_rejects_bad_construction(self, tmp_path):
        specs, flags = smoke_setup(tmp_path / "store")
        with pytest.raises(ValueError):
            Orchestrator("coallocation", specs, tmp_path, workers=0)
        with pytest.raises(ValueError):
            Orchestrator("coallocation", specs, tmp_path, retries=-1)
        with pytest.raises(ValueError):
            Orchestrator("coallocation", [], tmp_path)


class TestEndToEnd:
    """Real worker subprocesses, injected crash, byte-level acceptance."""

    def test_injected_kill_is_retried_and_store_matches_serial_run(
            self, tmp_path, capsys):
        ref = tmp_path / "ref"
        assert main(["run", "coallocation", *SMOKE, "--jobs", "1",
                     "--out", str(ref)]) == 0
        capsys.readouterr()
        out = tmp_path / "store"
        specs, flags = smoke_setup(out)
        lines = []
        report = Orchestrator(
            "coallocation", specs, out, worker_flags=flags,
            workers=3, retries=2, poll_interval_s=0.1,
            backoff_base_s=0.1, inject_kill_cells=1,
            echo=lines.append).run()
        assert report.ok
        assert report.retries >= 1
        assert not report.failed
        reference = next(ref.glob("coallocation-*.jsonl"))
        produced = next(out.glob("coallocation-*.jsonl"))
        assert produced.name == reference.name
        assert produced.read_bytes() == reference.read_bytes()
        # success-path cleanup: no scratch tree, no stray checkpoints
        assert not (out / ".orchestrate").exists()
        assert not list(out.glob("*.partial"))
        assert any("exited 137" in line for line in lines)
        assert any("campaign complete" in line for line in lines)

    def test_cached_campaign_short_circuits(self, tmp_path, capsys):
        out = tmp_path / "store"
        assert main(["run", "coallocation", *SMOKE, "--jobs", "1",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        specs, flags = smoke_setup(out)
        strategy = HangStrategy()  # would hang if any worker launched
        report = Orchestrator(
            "coallocation", specs, out, worker_flags=flags,
            workers=2, poll_interval_s=0.01, strategy=strategy,
            echo=lambda line: None).run()
        assert report.ok
        assert strategy.launched == 0

    def test_keep_partial_retains_scratch(self, tmp_path):
        out = tmp_path / "store"
        specs, flags = smoke_setup(out)
        report = Orchestrator(
            "coallocation", specs, out, worker_flags=flags,
            workers=2, shards=2, poll_interval_s=0.1,
            backoff_base_s=0.1, keep_partial=True,
            echo=lambda line: None).run()
        assert report.ok
        assert (out / ".orchestrate").exists()
        assert next(out.glob("coallocation-*.jsonl")).stat().st_size > 0

    def test_cli_orchestrate_verb(self, tmp_path, capsys):
        out = tmp_path / "store"
        rc = main(["orchestrate", "coallocation", *SMOKE,
                   "--workers", "2", "--out", str(out),
                   "--poll-interval", "0.1", "--backoff", "0.1"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "campaign complete" in text
        assert "retries: 0" in text
        assert next(out.glob("coallocation-*.jsonl")).stat().st_size > 0


class MixedStrategy(ExecutionStrategy):
    """Shard 1 crashes instantly (enters retry backoff); shard 2 hangs
    without heartbeats (the stall scenario) — together they pin that
    one shard's backoff never delays another's stall detection."""

    def __init__(self):
        self.killed = 0

    def launch(self, task):
        return task.shard[0]

    def poll(self, handle):
        return 9 if handle == 1 else None

    def terminate(self, handle):
        self.killed += 1


class TestNonBlockingBackoff:
    """Retry backoff is deadline-scheduled, never slept through: the
    poll cadence (and with it stall detection for *other* shards) is
    independent of any shard's pending relaunch."""

    def test_tick_sleep_wakes_at_nearest_pending_deadline(self, tmp_path):
        import time as _time

        from repro.experiments.orchestrator import ShardState

        specs, flags = smoke_setup(tmp_path / "store")
        orch = Orchestrator(
            "coallocation", specs, tmp_path / "store",
            worker_flags=flags, poll_interval_s=5.0,
            echo=lambda line: None)

        def shard(status, not_before=0.0):
            return ShardState(index=1, shard=(1, 1),
                              scratch=tmp_path, heartbeat=tmp_path,
                              status=status, not_before=not_before)

        now = _time.monotonic()
        # no pending shard: the poll interval is the cadence
        assert orch._tick_sleep([shard("running")]) == pytest.approx(
            5.0, abs=0.01)
        # a pending deadline sooner than the interval wins...
        near = orch._tick_sleep([shard("pending", now + 0.2),
                                 shard("running")])
        assert 0.0 <= near <= 0.2
        # ...an overdue one means no sleep at all...
        assert orch._tick_sleep([shard("pending", now - 1.0)]) == 0.0
        # ...and a distant one is still capped by the poll interval.
        assert orch._tick_sleep(
            [shard("pending", now + 60.0)]) == pytest.approx(5.0, abs=0.01)

    def test_short_backoff_not_stretched_by_long_poll_interval(
            self, tmp_path):
        import time as _time

        specs, flags = smoke_setup(tmp_path / "store")
        t0 = _time.monotonic()
        report = Orchestrator(
            "coallocation", specs, tmp_path / "store",
            worker_flags=flags, workers=1, shards=1, retries=1,
            poll_interval_s=5.0, backoff_base_s=0.05,
            strategy=FailStrategy(exit_code=9),
            echo=lambda line: None).run()
        elapsed = _time.monotonic() - t0
        assert not report.ok
        assert report.retries == 1
        # A fixed poll-interval cadence would take >= 5 s per tick;
        # the deadline-aware sleep finishes the whole campaign fast.
        assert elapsed < 2.0

    def test_one_shards_backoff_never_stalls_anothers_detection(
            self, tmp_path):
        import time as _time

        specs, flags = smoke_setup(tmp_path / "store")
        strategy = MixedStrategy()
        t0 = _time.monotonic()
        stalled_at = []

        def echo(line):
            if "stalled" in line:
                stalled_at.append(_time.monotonic() - t0)

        report = Orchestrator(
            "coallocation", specs, tmp_path / "store",
            worker_flags=flags, workers=2, shards=2, retries=1,
            stall_timeout_s=0.2, poll_interval_s=0.05,
            backoff_base_s=1.5, strategy=strategy, echo=echo).run()
        assert not report.ok
        assert "stalled" in report.failed[2]
        # Shard 2's stall fired on the poll cadence, well before shard
        # 1's 1.5 s relaunch backoff expired — the backoff is a
        # deadline, not a sleep the whole loop serves.
        assert stalled_at and stalled_at[0] < 1.0
