"""The communication-aware scenario pack (engine-backed)."""

import pytest

from repro.cluster import ClusterSpec, build_latratio_cluster
from repro.experiments.commaware import (
    ALL_STRATEGIES,
    COMMAWARE_STRATEGIES,
    PAPER_STRATEGIES,
    commaware_alloc_spec,
    commaware_report,
    latratio_spec,
    run_commaware_campaign,
)
from repro.experiments.engine import ResultStore, SweepRunner

SMALL = ClusterSpec(kind="small")


def small_campaign(seed=3, jobs=1, store=None, force=False):
    return run_commaware_campaign(
        seed=seed, demands=(4, 8), strategies=ALL_STRATEGIES,
        cluster_spec=SMALL, with_apps=False, with_latratio=False,
        jobs=jobs, store=store, force=force)


class TestRoster:
    def test_six_strategies(self):
        assert len(ALL_STRATEGIES) == 6
        assert set(PAPER_STRATEGIES).isdisjoint(COMMAWARE_STRATEGIES)


class TestAllocSweep:
    def test_all_strategies_produce_cells_with_metrics(self):
        campaign = small_campaign()
        assert campaign.alloc.executed == 12  # 6 strategies x 2 demands
        for cell in campaign.alloc.cells:
            value = cell.value
            assert value["status"] in ("success", "degraded")
            assert value["latency_diameter_ms"] >= 0.0
            assert (value["min_bandwidth_bps"] is None
                    or value["min_bandwidth_bps"] > 0)
            assert value["sites_used"] >= 1

    def test_single_host_allocation_has_null_bandwidth(self):
        campaign = small_campaign()
        cell = campaign.alloc.value(strategy="concentrate", n=4)
        assert cell["total_hosts"] == 1
        assert cell["min_bandwidth_bps"] is None

    def test_serial_parallel_stores_byte_identical(self, tmp_path):
        spec = commaware_alloc_spec(seed=3, demands=(4, 8),
                                    cluster_spec=SMALL)
        serial = ResultStore(tmp_path / "serial")
        parallel = ResultStore(tmp_path / "parallel")
        SweepRunner(spec, jobs=1, store=serial).run()
        SweepRunner(spec, jobs=2, store=parallel).run()
        assert (serial.path_for(spec).read_bytes()
                == parallel.path_for(spec).read_bytes())


class TestReport:
    def test_report_lists_all_strategies(self):
        campaign = small_campaign()
        report = commaware_report(campaign)
        for strategy in ALL_STRATEGIES:
            assert strategy in report
        assert "placement quality" in report
        assert "minbw_gbps@n" in report

    def test_report_deterministic_across_jobs(self):
        serial = commaware_report(small_campaign(jobs=1))
        parallel = commaware_report(small_campaign(jobs=2))
        assert serial == parallel


class TestLatencyRatioAxis:
    def test_builder_scales_lan_rtt(self):
        flat = build_latratio_cluster(seed=1, boot=False, latency_ratio=1.0)
        deep = build_latratio_cluster(seed=1, boot=False,
                                      latency_ratio=1000.0)
        assert flat.topology.lan_rtt_ms == pytest.approx(10.576)
        assert deep.topology.lan_rtt_ms == pytest.approx(0.010576)
        # WAN RTTs (the measured figure-legend values) are untouched.
        assert flat.topology.site_rtt_ms("nancy", "lyon") == 10.576
        assert deep.topology.site_rtt_ms("nancy", "lyon") == 10.576

    def test_builder_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            build_latratio_cluster(boot=False, latency_ratio=0.0)

    def test_cluster_spec_params_reach_builder(self):
        spec = ClusterSpec(kind="grid5000-latratio").with_params(
            latency_ratio=2.0)
        cluster = spec.build(seed=0)
        assert cluster.topology.lan_rtt_ms == pytest.approx(10.576 / 2.0)

    def test_params_in_fingerprint(self):
        base = ClusterSpec(kind="grid5000-latratio")
        varied = base.with_params(latency_ratio=9.0)
        assert base.fingerprint() != varied.fingerprint()

    def test_unsorted_params_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(kind="small", params=(("b", 1), ("a", 2)))

    def test_latratio_spec_shape(self):
        spec = latratio_spec(seed=1, ratios=(1.0, 10.0), n=16)
        assert spec.axis_names == ["ratio", "strategy"]
        assert spec.cell_count() == 2 * len(ALL_STRATEGIES)
        assert spec.meta["n"] == 16

    def test_latratio_cells_ratio_changes_diameter(self):
        """One coarse end-to-end cell per extreme ratio: the measured
        diameter must shrink as the grid flattens into a hierarchy."""
        spec = latratio_spec(seed=1, ratios=(1.0, 1000.0),
                             strategies=("concentrate",), n=120)
        result = SweepRunner(spec).run()
        flat = result.value(ratio=1.0, strategy="concentrate")
        deep = result.value(ratio=1000.0, strategy="concentrate")
        assert deep["latency_diameter_ms"] < flat["latency_diameter_ms"]


class TestCaching:
    def test_second_run_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        first = small_campaign(store=store)
        again = small_campaign(store=store)
        assert first.alloc.executed == 12
        assert again.alloc.executed == 0
        assert again.alloc.cached == 12
        assert commaware_report(first) == commaware_report(again)
