"""§5.1 narrative checks on the full Grid'5000 simulation.

These are the paper's own qualitative claims, asserted on reduced
sweeps of the real experiment driver (the benchmarks run the full
100..600 sweep).
"""

import pytest

from repro.experiments.coallocation import run_coallocation_experiment


@pytest.fixture(scope="module")
def sweeps(grid5000_cluster):
    return run_coallocation_experiment(
        demands=(100, 200, 250, 300, 400, 600),
        strategies=("concentrate", "spread"),
        cluster=grid5000_cluster,
    )


class TestConcentrate:
    def test_only_nancy_up_to_200(self, sweeps):
        """'the processes are allocated on the 60 hosts available at
        nancy only, up to 200 processes'"""
        series = sweeps["concentrate"]
        assert series.point(100).sites_used == ["nancy"]
        assert series.point(200).sites_used == ["nancy"]

    def test_nancy_cores_saturate_at_240(self, sweeps):
        series = sweeps["concentrate"]
        assert series.point(300).cores("nancy") == 240
        assert series.point(600).cores("nancy") == 240

    def test_lyon_first_overflow_site(self, sweeps):
        """'further hosts are first allocated at lyon (5 for -n 250)'"""
        series = sweeps["concentrate"]
        pt = series.point(250)
        assert pt.cores("nancy") == 240
        assert pt.hosts("lyon") == 5
        assert pt.cores("lyon") == 10

    def test_packs_hosts_to_capacity(self, sweeps):
        series = sweeps["concentrate"]
        # 100 processes on 4-core nancy hosts -> 25 hosts.
        assert series.point(100).total_hosts == 25

    def test_sophia_never_needed(self, sweeps):
        """Total capacity of the five closer sites (824 cores) covers
        600 processes; sophia (17 ms) stays out."""
        series = sweeps["concentrate"]
        assert series.point(600).cores("sophia") == 0

    def test_total_cores_match_demand(self, sweeps):
        series = sweeps["concentrate"]
        for pt in series.points:
            assert sum(pt.cores_by_site.values()) == pt.n


class TestSpread:
    def test_one_process_per_host_while_hosts_remain(self, sweeps):
        """'a good allocation should map only one process per host as
        much as possible'"""
        series = sweeps["spread"]
        for n in (100, 200, 250, 300):
            pt = series.point(n)
            assert pt.total_hosts == n, f"n={n}"

    def test_uses_all_sites_from_300(self, sweeps):
        """'From 300 processes, the strategy leads to take hosts from
        all sites'"""
        pt = sweeps["spread"].point(300)
        assert len(pt.sites_used) == 6

    def test_four_closest_sites_dominate_at_250(self, sweeps):
        """'hosts are chosen from the four closest sites up to 250' —
        allow a small noise-driven tail on grenoble."""
        pt = sweeps["spread"].point(250)
        core_four = (pt.cores("nancy") + pt.cores("lyon")
                     + pt.cores("rennes") + pt.cores("bordeaux"))
        assert core_four >= 240  # >= 96%
        assert pt.cores("sophia") == 0

    def test_nancy_stair_at_400(self, sweeps):
        """'the number of cores allocated at nancy makes a stair at 400
        ... the closest peers are first chosen to host a second
        process' — 350 hosts exist, so 400 demands 50 doublings, all
        at nancy."""
        series = sweeps["spread"]
        assert series.point(300).cores("nancy") == 60
        assert series.point(400).cores("nancy") == 110
        assert series.point(400).hosts("nancy") == 60

    def test_all_350_hosts_used_beyond_350(self, sweeps):
        """'all peers have been discovered and the strategy tends to
        use them all'"""
        pt = sweeps["spread"].point(400)
        assert sum(pt.hosts_by_site.values()) == 350

    def test_total_cores_match_demand(self, sweeps):
        series = sweeps["spread"]
        for pt in series.points:
            assert sum(pt.cores_by_site.values()) == pt.n


class TestRankingQuality:
    def test_nancy_always_first(self, sweeps):
        """0.087 ms vs >=10 ms: noise can never displace nancy."""
        for strategy in ("concentrate", "spread"):
            pt = sweeps[strategy].point(100)
            assert pt.cores("nancy") > 0

    def test_middle_sites_interleave_under_noise(self, sweeps):
        """lyon/rennes/bordeaux 'fiercely compete': by 600 demanded,
        concentrate must have crossed into rennes and/or bordeaux."""
        pt = sweeps["concentrate"].point(600)
        assert pt.cores("rennes") + pt.cores("bordeaux") > 0

    def test_reservation_time_sub_second(self, sweeps):
        for strategy in ("concentrate", "spread"):
            for pt in sweeps[strategy].points:
                assert pt.reservation_s < 2.5
