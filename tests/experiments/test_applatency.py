"""The applatency campaign: determinism, resume, sharding, acceptance.

The regression surface mirrors churnload's (per-cell clusters built
from an axis value, byte-deterministic report), plus the ISSUE's
acceptance story: at deep hierarchy the communication-aware strategies
must buy IS wall-clock while EP stays communication-indifferent.
"""

import pytest

from repro.apps.is_bench import ISBenchmark
from repro.experiments.aggregate import StoreMerger
from repro.experiments.applatency import (
    APPLATENCY_NS,
    APPLATENCY_STRATEGIES,
    applatency_report,
    applatency_spec,
    run_applatency_campaign,
)
from repro.experiments.engine import ResultStore, SweepRunner

TINY_RATIOS = (1.0, 1000.0)
TINY_NS = (64,)


def tiny_spec(seed=0, name="applatency-test"):
    """8-cell IS panel: 2 ratios x 4 strategies x n=64."""
    return applatency_spec(ISBenchmark("B"), ratios=TINY_RATIOS,
                           ns=TINY_NS, seed=seed, name=name)


def tiny_campaign(seed=0, jobs=1, store=None, force=False, shard=None):
    return run_applatency_campaign(seed=seed, ratios=TINY_RATIOS,
                                   ns=TINY_NS, jobs=jobs, store=store,
                                   force=force, shard=shard)


class TestSpec:
    def test_shape_and_defaults(self):
        spec = applatency_spec(ISBenchmark("B"))
        assert spec.axis_names == ["ratio", "strategy", "n"]
        assert spec.cell_count() == (4 * len(APPLATENCY_STRATEGIES)
                                     * len(APPLATENCY_NS))
        assert spec.cluster.kind == "grid5000-latratio"
        assert spec.cost_key is not None

    def test_cells_record_contention_fingerprint(self):
        sweep = SweepRunner(tiny_spec()).run()
        for cell in sweep.cells:
            v = cell.value
            assert v["status"] in ("success", "degraded")
            assert v["time_s"] > 0 and v["comm_s"] > 0
            assert v["comm_s"] < v["time_s"]
            assert v["sites_used"] >= 1
            assert v["max_crossing_pairs"] >= 0

    def test_single_site_plan_has_no_crossing(self):
        sweep = SweepRunner(tiny_spec()).run()
        cell = sweep.value(ratio=1000.0, strategy="bandwidth_spread", n=64)
        assert cell["sites_used"] == 1
        assert cell["max_crossing_pairs"] == 0


class TestDeterminism:
    def test_jobs1_jobs2_reports_byte_identical(self):
        serial = applatency_report(tiny_campaign(jobs=1))
        parallel = applatency_report(tiny_campaign(jobs=2))
        assert serial == parallel

    def test_serial_parallel_stores_byte_identical(self, tmp_path):
        spec = tiny_spec(seed=3)
        serial = ResultStore(tmp_path / "serial")
        parallel = ResultStore(tmp_path / "parallel")
        SweepRunner(spec, jobs=1, store=serial).run()
        SweepRunner(spec, jobs=2, store=parallel).run()
        assert (serial.path_for(spec).read_bytes()
                == parallel.path_for(spec).read_bytes())

    def test_kill_resume_byte_identical(self, tmp_path):
        """A campaign killed mid-sweep resumes through the ``.partial``
        checkpoint and promotes to the straight-through bytes."""
        spec = tiny_spec()
        store = ResultStore(tmp_path)
        full = SweepRunner(spec, store=store).run()
        canonical = store.path_for(spec).read_bytes()
        store.path_for(spec).unlink()
        store.append_partial(spec, full.cells[:3])
        resumed = SweepRunner(spec, jobs=2, store=store).run()
        assert resumed.executed == 5 and resumed.cached == 3
        assert store.path_for(spec).read_bytes() == canonical
        assert not store.partial_path_for(spec).exists()

    def test_shard_halves_merge_to_unsharded_store(self, tmp_path):
        """--shard 1/2 + 2/2 checkpoint stores reassemble byte-for-byte
        into the canonical file an unsharded run writes."""
        spec = tiny_spec(seed=1, name="applatency-shardtest")
        reference = ResultStore(tmp_path / "reference")
        SweepRunner(spec, store=reference).run()
        shards = ResultStore(tmp_path / "shards")
        one = SweepRunner(spec, store=shards, shard=(1, 2)).run()
        two = SweepRunner(spec, store=shards, shard=(2, 2)).run()
        assert one.executed + two.executed == spec.cell_count()
        # Shard slices never promote: only the checkpoint exists.
        assert not shards.path_for(spec).exists()
        merged = StoreMerger().merge([shards.partial_path_for(spec)])
        assert merged.complete
        path = merged.write(tmp_path / "merged")
        assert path.read_bytes() == reference.path_for(spec).read_bytes()

    def test_cache_replay_stable(self, tmp_path):
        store = ResultStore(tmp_path)
        first = tiny_campaign(store=store)
        again = tiny_campaign(store=store)
        assert again.apps["is.B"].executed == 0
        assert applatency_report(first) == applatency_report(again)


class TestAcceptanceStory:
    """ISSUE acceptance: the report must show a deep-hierarchy IS cell
    where bandwidth_spread/topo_block beat plain spread strictly,
    while EP shows no communication win."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return tiny_campaign(jobs=2)

    def test_is_deep_hierarchy_commaware_beats_spread(self, campaign):
        sweep = campaign.apps["is.B"]
        spread = sweep.value(ratio=1000.0, strategy="spread", n=64)
        for strategy in ("bandwidth_spread", "topo_block"):
            aware = sweep.value(ratio=1000.0, strategy=strategy, n=64)
            assert aware["time_s"] < spread["time_s"], strategy

    def test_is_flat_grid_gives_no_commaware_win(self, campaign):
        """At ratio 1 the grid is one big LAN latency-wise: locality
        buys nothing, which is the axis's whole point."""
        sweep = campaign.apps["is.B"]
        spread = sweep.value(ratio=1.0, strategy="spread", n=64)
        aware = sweep.value(ratio=1.0, strategy="bandwidth_spread", n=64)
        assert aware["time_s"] >= spread["time_s"]

    def test_ep_shows_no_material_communication_gap(self, campaign):
        """EP's communication share stays negligible (< 5% of wall-
        clock) under every strategy: whatever wall-clock gap remains
        is memory contention on packed hosts, not the network."""
        sweep = campaign.apps["ep.B"]
        for cell in sweep.cells:
            assert cell.value["comm_s"] < 0.05 * cell.value["time_s"]
        deep = [sweep.value(ratio=1000.0, strategy=s, n=64)["comm_s"]
                for s in APPLATENCY_STRATEGIES]
        assert max(deep) - min(deep) < 0.15

    def test_report_survives_roster_without_spread(self):
        """Custom strategy rosters are public API: the speedup panel
        falls back to the first strategy as its baseline."""
        campaign = run_applatency_campaign(
            ratios=(1000.0,), ns=(64,),
            strategies=("concentrate", "topo_block"))
        report = applatency_report(campaign)
        assert "speedup over concentrate" in report

    def test_report_contains_story_and_calibration(self, campaign):
        report = applatency_report(campaign)
        for strategy in APPLATENCY_STRATEGIES:
            assert strategy in report
        assert "speedup over spread" in report
        assert "fig4 crossover calibration" in report
        assert " plan:" in report and "fixed:" in report
