"""Figure 4 shape checks on reduced sweeps."""

import pytest

from repro.apps import EPBenchmark, ISBenchmark
from repro.experiments.applications import run_application_experiment


@pytest.fixture(scope="module")
def ep(grid5000_cluster):
    return run_application_experiment(
        EPBenchmark("B"), process_counts=(32, 128, 512),
        cluster=grid5000_cluster)


@pytest.fixture(scope="module")
def is_(grid5000_cluster):
    return run_application_experiment(
        ISBenchmark("B"), process_counts=(32, 64, 128),
        cluster=grid5000_cluster)


class TestEPShape:
    """'EP using 32 to 256 processes is slightly faster when allocation
    strategy spread ... overheads ... seem to reach an equilibrium' at
    512."""

    def test_spread_faster_at_32(self, ep):
        assert ep["spread"].time_at(32) < ep["concentrate"].time_at(32)

    def test_spread_not_slower_at_128(self, ep):
        assert (ep["spread"].time_at(128)
                <= ep["concentrate"].time_at(128) * 1.1)

    def test_equilibrium_at_512(self, ep):
        ratio = ep["spread"].time_at(512) / ep["concentrate"].time_at(512)
        assert 0.7 < ratio < 1.4

    def test_both_curves_decrease(self, ep):
        for strategy in ("spread", "concentrate"):
            assert ep[strategy].is_monotone_decreasing(tolerance=0.10)

    def test_compute_bound_scale(self, ep):
        """Class B at 32 procs lands in the paper's 1-10 s band."""
        assert 3.0 < ep["concentrate"].time_at(32) < 15.0


class TestISShape:
    """'With 32 processes, spread leads to better performances than
    concentrate ... Using 64 processes with spread ... leads to a
    slowdown.  Keeping the processes inside the cluster with
    concentrate gives a roughly constant execution time.'"""

    def test_spread_wins_at_32(self, is_):
        assert is_["spread"].time_at(32) < is_["concentrate"].time_at(32)

    def test_spread_loses_from_64(self, is_):
        assert is_["spread"].time_at(64) > is_["concentrate"].time_at(64)
        assert is_["spread"].time_at(128) > is_["concentrate"].time_at(128)

    def test_spread_degrades_with_n(self, is_):
        times = is_["spread"].times
        assert times[0] < times[1] < times[2]

    def test_concentrate_roughly_constant(self, is_):
        assert is_["concentrate"].flatness() < 1.8

    def test_spread_at_128_much_worse(self, is_):
        """The paper's right panel shows a ~3-4x gap at 128."""
        ratio = is_["spread"].time_at(128) / is_["concentrate"].time_at(128)
        assert ratio > 2.0

    def test_is_band(self, is_):
        """All IS points fall inside the paper's 0-40 s axis."""
        for strategy in ("spread", "concentrate"):
            for t in is_[strategy].times:
                assert 0.0 < t < 40.0


class TestDriver:
    def test_unknown_status_raises(self, grid5000_cluster):
        from repro.apps import EPBenchmark

        with pytest.raises(RuntimeError):
            run_application_experiment(
                EPBenchmark("B"), process_counts=(2000,),  # infeasible
                cluster=grid5000_cluster)

    def test_series_accessors(self, ep):
        series = ep["spread"]
        assert series.ns == [32, 128, 512]
        with pytest.raises(KeyError):
            series.time_at(999)
