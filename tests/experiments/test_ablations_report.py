"""Ablation studies and report emitters."""

import pytest

from repro.apps import EPBenchmark
from repro.experiments.ablations import (
    block_strategy_ablation,
    kendall_tau,
    latency_noise_ablation,
    overbooking_ablation,
    replication_ablation,
    smoothing_ablation,
)
from repro.experiments.report import (
    format_series_table,
    format_site_table,
    legend_order,
    series_to_csv,
)


class TestKendallTau:
    def test_identical_ranking(self):
        assert kendall_tau([1, 2, 3], [10, 20, 30]) == 1.0

    def test_reversed_ranking(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0

    def test_partial(self):
        tau = kendall_tau([1, 2, 3, 4], [1, 3, 2, 4])
        assert 0 < tau < 1

    def test_singleton(self):
        assert kendall_tau([1], [2]) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2, 3])


class TestNoiseAblation:
    def test_zero_noise_perfect_ranking(self):
        points = latency_noise_ablation(sigmas_ms=(0.0,), seed=1)
        # Hosts within a site tie at identical base RTT; tau-a counts
        # ties as zero contribution, so "perfect" here means the
        # cross-site ordering is never violated: tau equals the
        # tie-adjusted maximum, well above any noisy setting.
        assert points[0].tau > 0.7

    def test_tau_degrades_with_noise(self):
        points = latency_noise_ablation(sigmas_ms=(0.0, 1.2, 5.0), seed=1)
        taus = [p.tau for p in points]
        assert taus[0] > taus[1] > taus[2]

    def test_more_samples_help(self):
        points = smoothing_ablation(noise_sigma_ms=2.0,
                                    sample_counts=(1, 30), seed=2)
        plain = {p.samples: p.tau for p in points if p.ewma_alpha is None}
        assert plain[30] > plain[1]


class TestOverbookingAblation:
    def test_overbooking_absorbs_failures(self):
        points = overbooking_ablation(factors=(1.0, 1.5), n=120,
                                      kill_count=12, seed=3)
        by_factor = {p.overbook_factor: p for p in points}
        # With killed grelon hosts the overbooked run must succeed and
        # must have detected the silent peers.
        assert by_factor[1.5].status == "success"
        assert by_factor[1.5].dead_detected > 0
        # Exact booking cannot do better than overbooking.
        assert by_factor[1.0].allocated <= by_factor[1.5].allocated


class TestReplicationAblation:
    def test_survival_improves_with_r(self):
        points = replication_ablation(replication_degrees=(1, 2),
                                      p_host_fail=0.1, n=20, seed=1,
                                      trials=2000)
        assert points[0].survival < points[1].survival

    def test_r1_matches_independent_failure_math(self):
        points = replication_ablation(replication_degrees=(1,),
                                      p_host_fail=0.05, n=20, seed=1,
                                      trials=4000)
        # 20 ranks on 20 distinct hosts: survival = 0.95^20 ~ 0.358
        assert points[0].survival == pytest.approx(0.95 ** 20, abs=0.04)


class TestBlockAblation:
    def test_block_curve_produced(self):
        points = block_strategy_ablation(EPBenchmark("A"), n=32,
                                         blocks=(1, 4), seed=0)
        assert len(points) == 2
        times = {p.block: p.time_s for p in points}
        # block=1 == spread (no contention) beats block=4 on EP compute.
        assert times[1] < times[4]


class TestReport:
    def test_legend_order(self):
        ordered = legend_order(["nancy", "sophia", "lyon"])
        assert ordered == ["sophia", "lyon", "nancy"]

    def test_site_table_and_csv(self, grid5000_cluster):
        from repro.experiments.coallocation import run_coallocation_experiment

        series = run_coallocation_experiment(
            demands=(100, 200), strategies=("concentrate",),
            cluster=grid5000_cluster)["concentrate"]
        table = format_site_table(series, value="cores")
        assert "nancy" in table and "100" in table and "TOTAL" in table
        with pytest.raises(ValueError):
            format_site_table(series, value="flops")
        csv = series_to_csv(series)
        assert csv.startswith("strategy,n,site,hosts,cores")
        assert "concentrate,100,nancy" in csv

    def test_series_table(self, grid5000_cluster):
        from repro.experiments.applications import run_application_experiment

        series = run_application_experiment(
            EPBenchmark("A"), process_counts=(32,),
            cluster=grid5000_cluster)
        table = format_series_table(series, title="EP-A")
        assert "EP-A" in table and "spread" in table
