"""Multi-user contention and ASCII figures."""

import pytest

from repro.experiments.figures import ascii_plot
from repro.experiments.multiuser import run_multiuser_experiment
from repro.middleware.jobs import JobRequest


class TestMultiUser:
    def test_concurrent_jobs_never_corun_on_a_host(self, small_cluster):
        outcome = run_multiuser_experiment(
            small_cluster,
            submitters=["a1-1.alpha", "b1-1.beta"],
            n=4, strategy="spread",
        )
        assert set(outcome.statuses.values()) == {"success"}
        assert outcome.concurrent_overlaps() == []

    def test_contention_produces_refusals_and_retries(self, small_cluster):
        """Two 5-host jobs on a 10-host grid overbook into each other:
        somebody gets NOKed; the loser's §3.2 retry wins eventually."""
        outcome = run_multiuser_experiment(
            small_cluster,
            submitters=["a1-1.alpha", "g1-1.gamma"],
            n=5, strategy="spread",
        )
        assert set(outcome.statuses.values()) == {"success"}
        assert outcome.concurrent_overlaps() == []
        assert outcome.total_refusals() > 0

    def test_capacity_pressure_still_serialised(self, small_cluster):
        """Two n=20 jobs on 28 cores: they may run back-to-back via the
        retry path, but never concurrently on shared hosts."""
        outcome = run_multiuser_experiment(
            small_cluster,
            submitters=["a1-1.alpha", "b1-1.beta"],
            requests=[
                JobRequest(n=20, strategy="concentrate", tag="u0"),
                JobRequest(n=20, strategy="concentrate", tag="u1"),
            ],
        )
        assert outcome.concurrent_overlaps() == []
        # At least one job succeeded; simultaneous success of both at
        # full capacity is impossible, so a retry (or an infeasible
        # verdict) must show up.
        statuses = list(outcome.statuses.values())
        assert "success" in statuses
        assert outcome.max_attempts() > 1 or "infeasible" in statuses

    def test_request_count_mismatch(self, small_cluster):
        with pytest.raises(ValueError):
            run_multiuser_experiment(
                small_cluster, submitters=["a1-1.alpha"],
                requests=[JobRequest(n=2), JobRequest(n=2)])

    def test_stagger(self, small_cluster):
        outcome = run_multiuser_experiment(
            small_cluster,
            submitters=["a1-1.alpha", "a1-2.alpha"],
            n=3, strategy="concentrate", stagger_s=5.0,
        )
        assert set(outcome.statuses.values()) == {"success"}
        assert outcome.overlaps() == []


class TestAsciiPlot:
    def test_renders_markers_and_legend(self):
        text = ascii_plot([1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]},
                          width=30, height=8, title="T")
        assert text.startswith("T")
        assert "o=down" in text and "x=up" in text
        assert "o" in text and "x" in text

    def test_flat_series_ok(self):
        text = ascii_plot([0, 1], {"flat": [2.0, 2.0]}, width=10, height=4)
        assert "flat" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"bad": [1]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([], {})

    def test_scales_to_extremes(self):
        text = ascii_plot([0, 10], {"s": [5.0, 25.0]}, width=20, height=5)
        assert "25.00" in text and "5.00" in text
