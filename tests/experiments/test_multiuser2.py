"""The multiuser2 control-plane campaign: spec, determinism, report."""

import pytest

from repro.cli import build_run_parser, main
from repro.cluster import ClusterSpec
from repro.experiments import registry
from repro.experiments.engine import ResultStore
from repro.experiments.multiuser2 import (multiuser2_report, multiuser2_spec,
                                          multiuser2_sweep)
from repro.experiments.orchestrator import worker_flags


def tiny_spec(seed=0, **overrides):
    kwargs = dict(tenants=(4, 16), rates=(0.05,),
                  cluster_spec=ClusterSpec(kind="small"), seed=seed)
    kwargs.update(overrides)
    return multiuser2_spec(**kwargs)


def run_args(*argv):
    return build_run_parser().parse_args(list(argv))


class TestSpec:
    def test_axes_and_cell_count(self):
        axes = dict(tiny_spec().axes)
        assert axes["tenants"] == (4, 16)
        assert axes["rate"] == (0.05,)
        assert axes["strategy"] == ("spread", "bandwidth_spread")
        assert tiny_spec().cell_count() == 4

    def test_content_hash_tracks_shape(self):
        assert (tiny_spec().content_hash()
                == tiny_spec().content_hash())
        assert (tiny_spec().content_hash()
                != tiny_spec(seed=1).content_hash())
        assert (tiny_spec().content_hash()
                != tiny_spec(tenants=(4,)).content_hash())


class TestSweepDeterminism:
    def test_serial_and_pool_runs_are_byte_identical(self, tmp_path):
        serial = multiuser2_sweep(spec=tiny_spec(), jobs=1)
        store = ResultStore(tmp_path)
        pooled = multiuser2_sweep(spec=tiny_spec(), jobs=2, store=store)
        assert ([c.value for c in serial.cells]
                == [c.value for c in pooled.cells])
        assert multiuser2_report(serial) == multiuser2_report(pooled)

    def test_cached_replay_is_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        first = multiuser2_sweep(spec=tiny_spec(), store=store)
        replay = multiuser2_sweep(spec=tiny_spec(), store=store)
        assert replay.executed == 0
        assert replay.cached == first.spec.cell_count()
        assert multiuser2_report(first) == multiuser2_report(replay)


class TestFairnessGap:
    """The headline result: under load, `spread` holds more hosts per
    job than the communication-aware placement keeps, so tenants see
    more refusals — a real fairness gap between the strategies."""

    @pytest.fixture(scope="class")
    def loaded_sweep(self):
        return multiuser2_sweep(spec=multiuser2_spec(
            tenants=(50,), rates=(0.02,),
            cluster_spec=ClusterSpec(kind="small"), seed=42))

    def test_saturation_gap_is_pinned(self, loaded_sweep):
        sat = {
            s: loaded_sweep.select(strategy=s)[0].value["saturation"]
            for s in ("spread", "bandwidth_spread")
        }
        assert sat["spread"] > sat["bandwidth_spread"] > 0

    def test_fairness_ledger_reconciles(self, loaded_sweep):
        for cell in loaded_sweep.cells:
            v = cell.value
            assert v["admitted"] + v["refused"] == v["arrivals"]
            assert v["leaked_holds"] == 0
            assert v["stuck_in_flight"] == {}
            assert v["proposals_committed"] == v["admitted"]

    def test_report_renders_gap_line(self, loaded_sweep):
        text = multiuser2_report(loaded_sweep)
        assert "== multi-tenant control plane:" in text
        assert "saturation@tenants" in text
        assert "slowdown-spread@tenants" in text
        assert "fairness gap @ rate=0.02, tenants=50:" in text
        # delta = spread - bandwidth_spread saturation must be positive
        delta = float(text.rsplit("delta=", 1)[1])
        assert delta > 0


class TestCliWiring:
    def test_registry_resolves_driver(self):
        exp = registry.get("multiuser2")
        assert exp.name == "multiuser2"
        assert exp.cli_axes == ("cluster", "controlplane")

    def test_spec_builder_honours_flags(self):
        args = run_args("multiuser2", "--cluster", "small",
                        "--tenants", "3,9", "--rates", "0.1")
        (spec,) = registry.get("multiuser2").specs(args)
        axes = dict(spec.axes)
        assert axes["tenants"] == (3, 9)
        assert axes["rate"] == (0.1,)

    def test_worker_flags_forward_controlplane_axes(self):
        args = run_args("multiuser2", "--cluster", "small",
                        "--tenants", "3,9", "--rates", "0.1")
        flags = worker_flags("multiuser2", args)
        assert ("--tenants", "3,9") == flags[flags.index("--tenants"):
                                             flags.index("--tenants") + 2]
        assert ("--rates", "0.1") == flags[flags.index("--rates"):
                                           flags.index("--rates") + 2]
        assert "--cluster" in flags
        # unset control-plane flags are not forwarded
        bare = worker_flags("multiuser2",
                            run_args("multiuser2", "--cluster", "small"))
        assert "--tenants" not in bare and "--rates" not in bare

    def test_cli_run_prints_deterministic_report(self, capsys):
        argv = ["run", "multiuser2", "--cluster", "small",
                "--tenants", "4", "--rates", "0.05", "--seed", "3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "fairness gap" in first
