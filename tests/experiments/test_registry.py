"""The experiment registry: manifest, lazy resolution, spec builders."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments import registry


def run_args(*argv):
    """Parsed `run` args for spec builders (defaults unless overridden)."""
    from repro.cli import build_run_parser

    return build_run_parser().parse_args(list(argv))


class TestManifest:
    def test_names_order_matches_legacy_choices(self):
        assert registry.names() == (
            "fig2", "fig3", "fig4", "table1", "ablations", "scaling",
            "multiuser", "coallocation", "commaware", "churnload",
            "applatency", "multiuser2", "topozoo", "migration", "all")

    def test_shardable_flags(self):
        assert not registry.is_shardable("table1")
        assert not registry.is_shardable("ablations")
        shardable = registry.shardable_names()
        assert "table1" not in shardable and "ablations" not in shardable
        assert set(shardable) | {"table1", "ablations"} == set(
            registry.names())

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            registry.get("quake")

    def test_register_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            registry.register(registry.Experiment(
                name="quake", cli_run=lambda args, store: None))

    def test_register_rejects_shardable_mismatch(self):
        with pytest.raises(ValueError):
            registry.register(registry.Experiment(
                name="table1", cli_run=lambda args, store: None,
                shardable=True))


class TestLaziness:
    def test_registry_import_pulls_no_drivers(self):
        src = str(Path(repro.__file__).resolve().parents[1])
        code = (
            "import sys\n"
            "from repro.experiments import registry\n"
            "extra = [m for m in sys.modules"
            " if m.startswith('repro.experiments.')"
            " and m != 'repro.experiments.registry']\n"
            "assert extra == [], extra\n"
            "registry.names(); registry.shardable_names()\n"
            "assert 'numpy' not in sys.modules\n")
        env = dict(os.environ)
        prior = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + prior if prior else "")
        subprocess.run([sys.executable, "-c", code], check=True, env=env)

    def test_cli_import_is_numpy_free(self):
        src = str(Path(repro.__file__).resolve().parents[1])
        code = ("import sys, repro.cli\n"
                "assert 'numpy' not in sys.modules\n")
        env = dict(os.environ)
        prior = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + prior if prior else "")
        subprocess.run([sys.executable, "-c", code], check=True, env=env)


class TestGet:
    def test_roundtrip_registers_driver(self):
        experiment = registry.get("coallocation")
        assert experiment.name == "coallocation"
        assert experiment.shardable
        assert experiment.specs is not None
        assert "demands" in experiment.cli_axes

    def test_every_shardable_name_has_a_spec_builder(self):
        for name in registry.shardable_names():
            assert registry.get(name).specs is not None, name

    def test_unshardable_entries_have_no_spec_builder(self):
        assert registry.get("table1").specs is None
        assert registry.get("ablations").specs is None

    def test_spec_builder_matches_cli_grid(self):
        args = run_args("coallocation", "--cluster", "small",
                        "--demands", "4,8")
        specs = registry.get("coallocation").specs(args)
        assert [spec.name for spec in specs] == ["coallocation"]
        assert specs[0].cell_count() == 4  # 2 strategies x 2 demands

    def test_all_composite_concatenates_parts(self):
        args = run_args("all", "--cluster", "small", "--demands", "4")
        whole = registry.get("all").specs(args)
        parts = []
        for name in ("fig2", "fig3", "fig4", "scaling", "multiuser"):
            parts.extend(registry.get(name).specs(args))
        assert ([(s.name, s.content_hash()) for s in whole]
                == [(s.name, s.content_hash()) for s in parts])

    def test_spec_builder_hash_matches_cli_store(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["run", "coallocation", "--cluster", "small",
                     "--demands", "4", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        args = run_args("coallocation", "--cluster", "small",
                        "--demands", "4")
        spec = registry.get("coallocation").specs(args)[0]
        stored = next(tmp_path.glob("coallocation-*.jsonl"))
        assert spec.content_hash()[:12] in stored.name
