"""The topozoo campaign: determinism, sharding, topology dependence.

The ISSUE's acceptance story: sweeping the full strategy roster over
generated complex-network families must produce at least one family
whose winning strategy differs from the paper testbed's — the winner
is a property of the topology, not of the strategies.  Pinned here on
the default seed, alongside the usual byte-determinism and store
regression surface every engine-backed campaign carries.
"""

import pytest

from repro.experiments.commaware import ALL_STRATEGIES
from repro.experiments.engine import ResultStore, SweepRunner
from repro.experiments.topozoo import (TOPOZOO_FAMILIES, TOPOZOO_SITES,
                                       run_topozoo_campaign, topozoo_report,
                                       topozoo_spec, topozoo_winners)

TINY_SITES = (12,)
TINY_FAMILIES = ("grid5000", "scale_free")


def tiny_campaign(seed=0, jobs=1, store=None, force=False, shard=None,
                  families=TINY_FAMILIES):
    return run_topozoo_campaign(seed=seed, families=families,
                                sizes=TINY_SITES, jobs=jobs, store=store,
                                force=force, shard=shard)


class TestSpec:
    def test_roster_covers_all_families(self):
        assert TOPOZOO_FAMILIES == ("grid5000", "scale_free",
                                    "small_world", "fat_sites")

    def test_generated_family_axes(self):
        spec = topozoo_spec("scale_free", seed=7)
        assert spec.axis_names == ["sites", "strategy"]
        assert spec.cell_count() == len(TOPOZOO_SITES) * len(ALL_STRATEGIES)
        assert spec.cluster.kind == "scale_free"
        assert spec.meta["topo_seed"] == 7

    def test_paper_testbed_has_no_size_axis(self):
        spec = topozoo_spec("grid5000")
        assert spec.axis_names == ["strategy"]
        assert spec.cell_count() == len(ALL_STRATEGIES)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown topozoo"):
            run_topozoo_campaign(families=("quake",))

    def test_cells_record_routed_fingerprint(self):
        sweep = SweepRunner(topozoo_spec("scale_free",
                                         sizes=TINY_SITES)).run()
        for cell in sweep.cells:
            v = cell.value
            assert v["status"] in ("success", "degraded")
            assert v["comm_s"] > 0
            assert v["min_bandwidth_bps"] is None or v["min_bandwidth_bps"] > 0
            assert v["max_route_hops"] >= 1  # multi-hop model engaged
            assert v["max_link_load"] >= 1


class TestDeterminism:
    def test_jobs1_jobs2_reports_byte_identical(self):
        serial = topozoo_report(tiny_campaign(jobs=1))
        parallel = topozoo_report(tiny_campaign(jobs=2))
        assert serial == parallel

    def test_store_replay_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        first = topozoo_report(tiny_campaign(store=store))
        replay = topozoo_report(tiny_campaign(store=store))
        assert first == replay

    def test_shard_halves_merge_to_unsharded_store(self, tmp_path):
        from repro.experiments.aggregate import StoreMerger

        spec = topozoo_spec("scale_free", sizes=TINY_SITES, seed=0)
        reference = ResultStore(tmp_path / "reference")
        SweepRunner(spec, store=reference).run()
        shards = ResultStore(tmp_path / "shards")
        one = SweepRunner(spec, store=shards, shard=(1, 2)).run()
        two = SweepRunner(spec, store=shards, shard=(2, 2)).run()
        assert one.executed + two.executed == spec.cell_count()
        merged = StoreMerger().merge([shards.partial_path_for(spec)])
        assert merged.complete
        path = merged.write(tmp_path / "merged")
        assert path.read_bytes() == reference.path_for(spec).read_bytes()

    def test_master_seed_reshapes_the_generated_graph(self):
        """topo_seed rides in meta (= the campaign master seed): a new
        seed means a new generated topology, while within one campaign
        every strategy of a (family, sites) group scores the same
        graph (the spec carries a single topo_seed for all cells)."""
        spec = topozoo_spec("scale_free", sizes=TINY_SITES, seed=0)
        assert spec.meta["topo_seed"] == 0  # one graph per campaign
        a = SweepRunner(spec).run()
        b = SweepRunner(topozoo_spec("scale_free", sizes=TINY_SITES,
                                     seed=1)).run()
        assert (a.value(sites=12, strategy="spread")["comm_s"]
                != b.value(sites=12, strategy="spread")["comm_s"])


class TestTopologyDependence:
    """The acceptance pin: generated families change the winner."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return run_topozoo_campaign(seed=0, sizes=TINY_SITES)

    def test_grid5000_winner_is_block(self, campaign):
        assert topozoo_winners(campaign)["grid5000"] == "block"

    def test_at_least_one_family_winner_differs(self, campaign):
        winners = topozoo_winners(campaign)
        baseline = winners.pop("grid5000")
        assert any(w != baseline for w in winners.values()), winners

    def test_scale_free_winner_pinned(self, campaign):
        # seed 0, 12 sites: hub contention rewards bandwidth-aware
        # spreading over the paper's block placement.
        winners = topozoo_winners(campaign)
        assert winners["scale_free[sites=12]"] == "bandwidth_spread"

    def test_report_names_differing_cells(self, campaign):
        report = topozoo_report(campaign)
        assert "paper testbed winner: block" in report
        assert "ranking strategies differently" in report
        assert "scale_free[sites=12] -> bandwidth_spread" in report

    def test_report_without_baseline_degrades(self):
        campaign = tiny_campaign(families=("scale_free",))
        report = topozoo_report(campaign)
        assert "no baseline to compare" in report


class TestCLI:
    def run_args(self, *argv):
        from repro.cli import build_run_parser

        return build_run_parser().parse_args(["topozoo", *argv])

    def test_registry_row(self):
        from repro.experiments import registry

        experiment = registry.get("topozoo")
        assert experiment.shardable
        assert "topozoo" in experiment.cli_axes

    def test_cli_specs_match_campaign_hashes(self):
        from repro.experiments import registry

        args = self.run_args("--family", "grid5000,scale_free",
                             "--sites", "12")
        specs = registry.get("topozoo").specs(args)
        assert [s.name for s in specs] == ["topozoo-grid5000",
                                           "topozoo-scale_free"]
        assert dict(specs[1].axes)["sites"] == (12,)

    def test_bad_family_exits(self):
        from repro.experiments.topozoo import _cli_overrides

        with pytest.raises(SystemExit, match="unknown families"):
            _cli_overrides(self.run_args("--family", "quake"))

    def test_bad_sites_exits(self):
        from repro.experiments.topozoo import _cli_overrides

        with pytest.raises(SystemExit):
            _cli_overrides(self.run_args("--sites", "0"))

    def test_worker_flags_forward_family_and_sites(self):
        from repro.experiments.orchestrator import worker_flags

        args = self.run_args("--family", "scale_free", "--sites", "16")
        flags = worker_flags("topozoo", args)
        assert ("--family", "scale_free") in zip(flags, flags[1:])
        assert ("--sites", "16") in zip(flags, flags[1:])

    def test_worker_flags_omit_unset(self):
        from repro.experiments.orchestrator import worker_flags

        flags = worker_flags("topozoo", self.run_args())
        assert "--family" not in flags and "--sites" not in flags
