"""Churn-under-load campaign: ledger accounting, determinism, resume.

The determinism coverage mirrors what commaware/engine already have —
this campaign adds real mid-flight churn to the mix, so the regression
surface (per-cell rng streams, revive/rejoin traffic) is its own.
"""

import pytest

from repro.cluster import ClusterSpec, build_small_cluster
from repro.experiments.churnload import (
    FixedWorkApp,
    churnload_report,
    churnload_spec,
    run_churnload_round,
)
from repro.experiments.engine import ResultStore, SweepRunner
from repro.experiments.multiuser import default_submitters
from repro.middleware.jobs import JobRequest


def tiny_spec(seed=0, failures=(0.0, 0.006),
              strategies=("spread", "bandwidth_spread"), replications=(2,),
              name="churnload-test"):
    """4-cell sweep on the small testbed with a short horizon."""
    return churnload_spec(
        arrivals=(0.05,), failures=failures, replications=replications,
        strategies=strategies, users=2, n=4, horizon_s=120.0,
        downtime_s=60.0, work_s=30.0, seed=seed,
        cluster_spec=ClusterSpec(kind="small"), name=name)


class TestRound:
    def test_quiet_round_all_jobs_complete(self):
        cluster = build_small_cluster(seed=2)
        submitters = default_submitters(cluster, 2)
        ledger = run_churnload_round(
            cluster, submitters, horizon_s=120.0, arrival_rate_s=0.05,
            n=4, r=1, strategy="concentrate", failure_rate_s=0.0)
        assert ledger.jobs_submitted > 0
        assert ledger.availability() == 1.0
        assert ledger.replica_survival() == 1.0
        assert not ledger.crashes and not ledger.revivals

    def test_ledger_copy_accounting(self):
        cluster = build_small_cluster(seed=2)
        submitters = default_submitters(cluster, 2)
        ledger = run_churnload_round(
            cluster, submitters, horizon_s=120.0, arrival_rate_s=0.05,
            n=4, r=2, strategy="spread", failure_rate_s=0.004)
        assert ledger.crashes, "churn never fired"
        for job in ledger.jobs:
            if job.launched:
                assert job.copies_planned == 8  # n=4 x r=2
                assert 0 <= job.copies_done <= job.copies_planned
                assert job.copies_lost == job.copies_planned - job.copies_done
            else:
                assert job.copies_done == 0
        summary = ledger.summary()
        assert summary["jobs"] == ledger.jobs_submitted
        assert summary["completed"] + summary["failed"] == summary["jobs"]
        assert sum(summary["statuses"].values()) == summary["jobs"]

    def test_submitters_and_anchor_are_sheltered(self):
        cluster = build_small_cluster(seed=5)
        submitters = default_submitters(cluster, 2)
        ledger = run_churnload_round(
            cluster, submitters, horizon_s=120.0, arrival_rate_s=0.05,
            n=4, r=1, strategy="spread", failure_rate_s=0.02)
        protected = set(submitters) | {cluster.supernode_host}
        assert ledger.crashes
        assert not {e.host_name for e in ledger.crashes} & protected

    def test_revived_host_rejoins_overlay(self):
        """The on_change revive path does a real re-registration: the
        supernode (which dropped the host via REPORT_DEAD or staleness)
        sees it again, and later allocations can use it."""
        cluster = build_small_cluster(seed=7)
        sim = cluster.sim
        victim = "b1-4.beta"
        cluster.churn.start(cluster.churn.kill_at([(1.0, victim)]))
        sim.run(until=2.0)
        # A submission while the host is down marks it dead everywhere.
        result = cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        assert victim in result.dead_peers
        assert victim not in cluster.supernode.records
        # Revive: the MPD rejoins like a restarted mpiboot.
        cluster.network.set_down(victim, False)
        cluster._on_host_change(victim, False)
        sim.run(until=sim.now + 1.0)
        assert victim in cluster.supernode.records
        second = cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        assert victim in {h.name for h in second.allocation.used_hosts()}

    def test_revival_restarts_periodic_ping(self):
        """With a background ping loop configured, a crash kills it
        (the loop exits while the host is down) and the revival must
        restart it — a revived host whose cache latencies freeze at
        pre-crash values would rank peers from stale data forever."""
        from repro.middleware.config import MiddlewareConfig

        cluster = build_small_cluster(
            seed=7, config=MiddlewareConfig(noise_sigma_ms=0.05,
                                            ping_period_s=5.0))
        sim = cluster.sim
        victim = cluster.mpds["b1-4.beta"]
        sim.run(until=6.0)  # at least one background ping round
        before = victim.peer.cache.entry("a1-2.alpha").last_update
        assert before > 0.0
        cluster.churn.start(cluster.churn.kill_at([(7.0, "b1-4.beta")]))
        sim.run(until=20.0)  # the dead host's ping loop exits
        cluster.network.set_down("b1-4.beta", False)
        cluster._on_host_change("b1-4.beta", False)
        sim.run(until=40.0)
        after = victim.peer.cache.entry("a1-2.alpha").last_update
        assert after > 20.0  # fresh measurements post-revival

    def test_fixed_work_app_durations(self):
        cluster = build_small_cluster(seed=1)
        result = cluster.submit_and_run(
            JobRequest(n=2, r=2, strategy="spread",
                       app=FixedWorkApp(duration_s=5.0)))
        durations = {payload["duration"]
                     for payload in result.completions.values()}
        assert durations == {5.0}


class TestDeterminism:
    def test_serial_and_parallel_stores_byte_identical(self, tmp_path):
        spec = tiny_spec()
        serial = ResultStore(tmp_path / "serial")
        parallel = ResultStore(tmp_path / "parallel")
        res_s = SweepRunner(spec, jobs=1, store=serial).run()
        res_p = SweepRunner(spec, jobs=2, store=parallel).run()
        assert res_s.executed == res_p.executed == spec.cell_count()
        assert (serial.path_for(spec).read_bytes()
                == parallel.path_for(spec).read_bytes())

    def test_kill_resume_byte_identical(self, tmp_path):
        """A campaign killed mid-sweep and resumed through its
        ``.partial`` checkpoint must promote to the same bytes a
        straight-through run produces."""
        spec = tiny_spec()
        store = ResultStore(tmp_path)
        full = SweepRunner(spec, store=store).run()
        canonical = store.path_for(spec).read_bytes()
        # Simulate the kill: canonical gone, checkpoint holds 2 of 4.
        store.path_for(spec).unlink()
        store.append_partial(spec, full.cells[:2])
        resumed = SweepRunner(spec, jobs=2, store=store).run()
        assert resumed.executed == 2 and resumed.cached == 2
        assert store.path_for(spec).read_bytes() == canonical
        assert not store.partial_path_for(spec).exists()

    def test_report_identical_across_replay(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path)
        first = churnload_report(SweepRunner(spec, store=store).run())
        again = churnload_report(SweepRunner(spec, store=store).run())
        assert first == again
        for strategy in ("spread", "bandwidth_spread"):
            assert strategy in first
        assert "avail@fail" in first and "survival@fail" in first


class TestSurvivalStory:
    def test_replica_survival_differs_spread_vs_bandwidth_spread(self):
        """The ROADMAP question: ``bandwidth_spread`` shrinks the host
        set — at equal replication degree its replica-survival must
        come out different from plain ``spread`` under the same churn
        axis (here it is *higher*: on the J=1 small grid spread's wider
        footprint exposes more victim hosts per job)."""
        spec = tiny_spec()
        sweep = SweepRunner(spec).run()
        survival = {
            strategy: sweep.value(fail=0.006, strategy=strategy,
                                  r=2)["replica_survival"]
            for strategy in ("spread", "bandwidth_spread")
        }
        assert survival["spread"] != survival["bandwidth_spread"]
        hosts = {
            strategy: sweep.value(fail=0.006, strategy=strategy,
                                  r=2)["mean_hosts_used"]
            for strategy in ("spread", "bandwidth_spread")
        }
        assert hosts["bandwidth_spread"] < hosts["spread"]

    def test_replication_buys_mid_run_survival(self):
        """§3.2: among jobs that *launched*, replication converts
        copy deaths into DEGRADED completions instead of RANKS_LOST
        failures.  (Total availability is confounded by launch
        fragility — an r=2 footprint touches more hosts before START —
        so the claim is pinned on the mid-run survival metric.)"""

        def completed_given_launched(value):
            statuses = value["statuses"]
            launched = sum(statuses.get(k, 0)
                           for k in ("success", "degraded", "ranks_lost"))
            done = statuses.get("success", 0) + statuses.get("degraded", 0)
            return done / launched

        spec = churnload_spec(
            arrivals=(0.05,), failures=(0.008,), replications=(1, 2),
            strategies=("concentrate",), users=2, n=4, horizon_s=120.0,
            downtime_s=60.0, work_s=30.0, seed=3,
            cluster_spec=ClusterSpec(kind="small"), name="churnload-rep")
        sweep = SweepRunner(spec).run()
        unreplicated = completed_given_launched(sweep.value(r=1))
        replicated = completed_given_launched(sweep.value(r=2))
        # Deterministic at seed 3: r=1 loses a rank mid-run, r=2 rides
        # the same churn out on surviving replicas.
        assert unreplicated < 1.0
        assert replicated == 1.0


@pytest.mark.slow
class TestFullCampaign:
    """The CLI-default small campaign (18 cells): the acceptance-
    criterion assertions at full grid scale, in the slow lane."""

    def test_default_report_shows_survival_gap(self):
        spec = churnload_spec()
        sweep = SweepRunner(spec, jobs=2).run()
        report = churnload_report(sweep)
        assert "== churn under load:" in report
        for r in (1, 2):
            spread = sweep.value(fail=0.006, strategy="spread",
                                 r=r)["replica_survival"]
            bwspread = sweep.value(fail=0.006, strategy="bandwidth_spread",
                                   r=r)["replica_survival"]
            assert spread != bwspread
