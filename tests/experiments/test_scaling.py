"""Reservation-latency scaling driver."""

import pytest

from repro.experiments.scaling import run_scaling_experiment


@pytest.fixture(scope="module")
def series(grid5000_cluster):
    return run_scaling_experiment(demands=(50, 200, 600),
                                  cluster=grid5000_cluster)


class TestScaling:
    def test_points_cover_demands(self, series):
        assert series.ns == [50, 200, 600]

    def test_milestones_ordered(self, series):
        for p in series.points:
            assert 0 < p.reservation_s <= p.launch_s <= p.total_s

    def test_first_try_allocation(self, series):
        assert all(p.attempts == 1 for p in series.points)

    def test_booked_hosts_grow_with_demand(self, series):
        booked = [p.booked_hosts for p in series.points]
        assert booked == sorted(booked)
        assert booked[-1] == 350  # overlay exhausted at 600

    def test_no_blowup(self, series):
        times = series.reservation_series()
        assert max(times) < 10 * min(times)

    def test_failure_raises(self, grid5000_cluster):
        with pytest.raises(RuntimeError):
            run_scaling_experiment(demands=(5000,),
                                   cluster=grid5000_cluster)
