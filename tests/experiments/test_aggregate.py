"""Distributed result aggregation: shard stores in, one campaign out.

The contract under test is the ISSUE-4 acceptance criterion: merging
the stores of ``--shard 1/3 + 2/3 + 3/3`` (and of two ``--jobs``
partitions' ``.partial`` files) reproduces the unsharded canonical
JSONL byte for byte, and a tampered cell value is rejected with a
conflict report.
"""

import json

import pytest

from repro.cluster import ClusterSpec
from repro.experiments.aggregate import (
    MergeConflictError,
    StoreMerger,
    aggregate_report,
    read_store_file,
    scan_store_root,
)
from repro.experiments.coallocation import coallocation_spec
from repro.experiments.engine import ResultStore, SweepRunner, make_spec

SMALL = ClusterSpec(kind="small")


def small_spec(seed: int = 5, demands=(4, 8),
               strategies=("spread", "concentrate"), name="agg-test"):
    return coallocation_spec(seed=seed, demands=demands,
                             strategies=strategies, cluster_spec=SMALL,
                             name=name)


def probe_cell(ctx) -> dict:
    return {"seed": ctx.seed, "metric": ctx.params["a"] * 2.5}


def run_full(tmp_path, spec):
    """Unsharded reference run; returns (store, canonical bytes)."""
    store = ResultStore(tmp_path / "reference")
    SweepRunner(spec, store=store).run()
    return store, store.path_for(spec).read_bytes()


def run_shards(tmp_path, spec, count, jobs=1):
    """Each shard into its own store dir (distinct machines); returns
    the .partial paths in shard order."""
    paths = []
    for index in range(1, count + 1):
        store = ResultStore(tmp_path / f"shard-{index}")
        SweepRunner(spec, store=store, jobs=jobs,
                    shard=(index, count)).run()
        paths.append(store.partial_path_for(spec))
    return paths


class TestShardUnion:
    def test_three_shards_merge_byte_identical(self, tmp_path):
        spec = small_spec()
        _, canonical = run_full(tmp_path, spec)
        paths = run_shards(tmp_path, spec, 3)
        merged = StoreMerger().merge(paths)
        assert merged.complete
        out = merged.write(tmp_path / "merged")
        assert out.name.endswith(".jsonl")
        assert out.read_bytes() == canonical

    def test_two_jobs_partitions_merge_byte_identical(self, tmp_path):
        # The ROADMAP wording: two --jobs partitions of one grid, each
        # leaving only its .partial checkpoint, reassemble exactly.
        spec = small_spec()
        _, canonical = run_full(tmp_path, spec)
        paths = run_shards(tmp_path, spec, 2, jobs=2)
        merged = StoreMerger().merge(paths)
        out = merged.write(tmp_path / "merged")
        assert out.read_bytes() == canonical

    def test_merge_order_independent(self, tmp_path):
        spec = small_spec()
        _, canonical = run_full(tmp_path, spec)
        paths = run_shards(tmp_path, spec, 3)
        for ordering in (paths, paths[::-1], [paths[1], paths[2], paths[0]]):
            out = StoreMerger().merge(ordering).write(
                tmp_path / "merged")
            assert out.read_bytes() == canonical

    def test_same_store_accumulates_shards(self, tmp_path):
        # Two shards run on ONE machine share a store: the .partial
        # accumulates both slices and merges alone.
        spec = small_spec()
        _, canonical = run_full(tmp_path, spec)
        store = ResultStore(tmp_path / "both")
        SweepRunner(spec, store=store, shard=(1, 2)).run()
        SweepRunner(spec, store=store, shard=(2, 2)).run()
        assert not store.path_for(spec).exists()  # shards never promote
        merged = StoreMerger().merge([store.partial_path_for(spec)])
        assert merged.complete
        assert merged.write(tmp_path / "merged").read_bytes() == canonical

    def test_canonical_plus_partial_duplicates_tolerated(self, tmp_path):
        spec = small_spec()
        store, canonical = run_full(tmp_path, spec)
        partials = run_shards(tmp_path, spec, 2)
        merged = StoreMerger().merge([store.path_for(spec), *partials])
        assert merged.complete
        assert merged.duplicates == spec.cell_count()
        assert merged.write(tmp_path / "merged").read_bytes() == canonical


class TestIncompleteMerge:
    def test_missing_shard_writes_partial(self, tmp_path):
        spec = small_spec()
        paths = run_shards(tmp_path, spec, 3)
        merged = StoreMerger().merge(paths[:2])
        assert not merged.complete
        assert len(merged.missing_indices) + len(merged.cells) \
            == spec.cell_count()
        out = merged.write(tmp_path / "merged")
        assert out.name.endswith(".jsonl.partial")
        assert "missing" in merged.summary()

    def test_incomplete_merge_is_resumable(self, tmp_path):
        # The merged .partial must behave like any engine checkpoint:
        # a later run executes only the missing shard and promotes to
        # the byte-exact canonical file.
        spec = small_spec()
        _, canonical = run_full(tmp_path, spec)
        paths = run_shards(tmp_path, spec, 3)
        merged_root = tmp_path / "merged"
        StoreMerger().merge(paths[:2]).write(merged_root)
        store = ResultStore(merged_root)
        resumed = SweepRunner(spec, store=store).run()
        assert resumed.executed == len(spec.shard_cells((3, 3)))
        assert store.path_for(spec).read_bytes() == canonical

    def test_write_absorbs_existing_partial_at_destination(self, tmp_path):
        # Merging shards 2+3 into a store that already holds shard 1's
        # checkpoint must union with it (and promote to canonical),
        # never clobber it.
        spec = small_spec()
        _, canonical = run_full(tmp_path, spec)
        dest = ResultStore(tmp_path / "dest")
        SweepRunner(spec, store=dest, shard=(1, 3)).run()
        others = run_shards(tmp_path, spec, 3)[1:]
        merged = StoreMerger().merge(others)
        assert not merged.complete  # shard 1 is not among the inputs
        out = merged.write(tmp_path / "dest")
        assert out == dest.path_for(spec)
        assert out.read_bytes() == canonical
        assert not dest.partial_path_for(spec).exists()  # promoted
        # Provenance reflects the absorbed checkpoint too.
        assert len(merged.sources) == 3
        assert "3 store(s)" in merged.summary()

    def test_write_refuses_divergent_cells_at_destination(self, tmp_path):
        spec = small_spec()
        store, _ = run_full(tmp_path, spec)
        paths = run_shards(tmp_path, spec, 2)
        dest = tmp_path / "dest"
        StoreMerger().merge([paths[0]]).write(dest)
        lurking = next(dest.glob("*.partial"))
        lines = lurking.read_text().splitlines()
        rec = json.loads(lines[1])
        rec["value"]["total_hosts"] = 4242
        lines[1] = json.dumps(rec, sort_keys=True)
        lurking.write_text("\n".join(lines) + "\n")
        with pytest.raises(MergeConflictError, match="divergent"):
            StoreMerger().merge(paths).write(dest)

    def test_torn_tail_only_drops_that_cell(self, tmp_path):
        spec = small_spec()
        _, canonical = run_full(tmp_path, spec)
        paths = run_shards(tmp_path, spec, 2)
        torn = paths[0].read_bytes()[:-15]  # tear the last record
        paths[0].write_bytes(torn)
        merged = StoreMerger().merge(paths)
        assert merged.torn_lines == 1
        assert len(merged.missing_indices) == 1
        # Re-supplying an intact copy of the torn shard completes it.
        intact = run_shards(tmp_path / "again", spec, 2)[0]
        full = StoreMerger().merge([paths[0], paths[1], intact])
        assert full.complete
        assert full.write(tmp_path / "merged").read_bytes() == canonical


class TestConflicts:
    def tamper(self, path, mutate, line_no=1):
        lines = path.read_text().splitlines()
        rec = json.loads(lines[line_no])
        mutate(rec)
        lines[line_no] = json.dumps(rec, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")

    def test_header_hash_mismatch_refused(self, tmp_path):
        a = run_shards(tmp_path / "a", small_spec(seed=5), 2)
        b = run_shards(tmp_path / "b", small_spec(seed=6), 2)
        with pytest.raises(MergeConflictError, match="header hash mismatch"):
            StoreMerger().merge([a[0], b[1]])

    def test_tampered_header_with_same_hash_refused(self, tmp_path):
        paths = run_shards(tmp_path, small_spec(), 2)
        self.tamper(paths[0],
                    lambda rec: rec["spec"].__setitem__("master_seed", 99),
                    line_no=0)
        with pytest.raises(MergeConflictError, match="tampered"):
            StoreMerger().merge(paths)

    def test_divergent_cell_value_refused_with_report(self, tmp_path):
        spec = small_spec()
        store, _ = run_full(tmp_path, spec)
        paths = run_shards(tmp_path, spec, 2)
        self.tamper(paths[0], lambda rec: rec["value"].__setitem__(
            "total_hosts", 9999))
        with pytest.raises(MergeConflictError) as err:
            StoreMerger().merge([store.path_for(spec), *paths])
        assert "divergent values" in str(err.value)
        assert len(err.value.conflicts) == 1
        conflict = err.value.conflicts[0]
        assert conflict.key in {c.key for c in spec.cells()}
        assert "9999" in conflict.describe()

    def test_divergence_within_one_file_refused(self, tmp_path):
        spec = small_spec()
        store, _ = run_full(tmp_path, spec)
        path = store.path_for(spec)
        lines = path.read_text().splitlines()
        rec = json.loads(lines[1])
        rec["value"]["total_hosts"] = 77
        lines.append(json.dumps(rec, sort_keys=True))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(MergeConflictError, match="divergent records"):
            read_store_file(path)

    def test_identical_duplicate_within_one_file_tolerated(self, tmp_path):
        spec = small_spec()
        store, _ = run_full(tmp_path, spec)
        path = store.path_for(spec)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines + [lines[1]]) + "\n")
        parsed = read_store_file(path)
        assert parsed.duplicates == 1
        assert len(parsed.cells) == spec.cell_count()

    def test_index_out_of_grid_refused(self, tmp_path):
        spec = small_spec()
        store, _ = run_full(tmp_path, spec)
        path = store.path_for(spec)
        self.tamper(path, lambda rec: rec.__setitem__("index", 999))
        with pytest.raises(MergeConflictError, match="outside"):
            StoreMerger().merge([path])

    def test_colliding_indices_refused(self, tmp_path):
        spec = small_spec()
        store, _ = run_full(tmp_path, spec)
        path = store.path_for(spec)
        # Two different keys claiming one grid slot: corrupt store.
        self.tamper(path, lambda rec: rec.__setitem__("index", 0),
                    line_no=2)
        with pytest.raises(MergeConflictError, match="both claim"):
            StoreMerger().merge([path])

    def test_non_store_file_refused(self, tmp_path):
        rogue = tmp_path / "notes.jsonl"
        rogue.write_text("just some text\n")
        with pytest.raises(MergeConflictError, match="sweep-header"):
            read_store_file(rogue)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(MergeConflictError, match="empty"):
            read_store_file(empty)

    def test_no_inputs_refused(self):
        with pytest.raises(MergeConflictError, match="no store files"):
            StoreMerger().merge([])


class TestAggregateReport:
    def test_rolls_multiple_sweeps(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(make_spec("alpha", {"a": (1, 2, 3)}, probe_cell),
                    store=store).run()
        SweepRunner(make_spec("beta", {"a": (1, 2)}, probe_cell),
                    store=store).run()
        text = aggregate_report(tmp_path)
        assert "2 sweep(s), 5/5 cells" in text
        assert "-- alpha [" in text and "-- beta [" in text
        assert "axes: a=3" in text and "axes: a=2" in text
        assert "metric" in text and "mean=" in text

    def test_partial_sweeps_reported_pending(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        SweepRunner(spec, store=store, shard=(1, 2)).run()
        text = aggregate_report(tmp_path)
        assert "partial" in text and "missing" in text

    def test_canonical_and_stale_partial_collapse(self, tmp_path):
        # A canonical file plus a leftover checkpoint of the same sweep
        # must report as ONE complete sweep, not two entries.
        spec = small_spec()
        store = ResultStore(tmp_path)
        full = SweepRunner(spec, store=store).run()
        store.append_partial(spec, full.cells[:2])
        sweeps, conflicts = scan_store_root(tmp_path)
        assert len(sweeps) == 1 and sweeps[0].complete
        assert conflicts == []
        assert "1 sweep(s)" in aggregate_report(tmp_path)

    def test_conflicting_sweep_surfaces_not_drops(self, tmp_path):
        # A canonical file plus a divergent same-hash checkpoint must
        # show up as CONFLICT — the exact condition the merge layer
        # refuses cannot silently vanish from the campaign report.
        spec = small_spec()
        store = ResultStore(tmp_path)
        full = SweepRunner(spec, store=store).run()
        store.append_partial(spec, full.cells)
        partial = store.partial_path_for(spec)
        lines = partial.read_text().splitlines()
        rec = json.loads(lines[1])
        rec["value"]["total_hosts"] = 9999
        lines[1] = json.dumps(rec, sort_keys=True)
        partial.write_text("\n".join(lines) + "\n")
        sweeps, conflicts = scan_store_root(tmp_path)
        assert sweeps == []
        assert len(conflicts) == 1 and conflicts[0].name == spec.name
        text = aggregate_report(tmp_path)
        assert "1 CONFLICTED" in text and "CONFLICT --" in text

    def test_rollups_independent_of_checkpoint_order(self, tmp_path):
        # A .partial from a --jobs pool holds cells in completion
        # order; the report's float sums must not depend on it.
        spec = small_spec()
        store = ResultStore(tmp_path / "src")
        SweepRunner(spec, store=store).run()
        lines = store.path_for(spec).read_text().splitlines()
        for name, cell_lines in (("fwd", lines[1:]), ("rev", lines[:0:-1])):
            d = tmp_path / name
            d.mkdir()
            (d / store.partial_path_for(spec).name).write_text(
                "\n".join([lines[0]] + list(cell_lines)) + "\n")
        assert (aggregate_report(tmp_path / "fwd")
                == aggregate_report(tmp_path / "rev"))

    def test_deterministic_and_pathless(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(make_spec("alpha", {"a": (1, 2)}, probe_cell),
                    store=store).run()
        text = aggregate_report(tmp_path)
        assert text == aggregate_report(tmp_path)
        assert str(tmp_path) not in text

    def test_empty_root(self, tmp_path):
        assert "0 sweep(s), 0/0 cells" in aggregate_report(tmp_path)

    def test_foreign_files_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(make_spec("alpha", {"a": (1,)}, probe_cell),
                    store=store).run()
        (tmp_path / "rogue.jsonl").write_text("not a store\n")
        # Valid JSON but not an object: must skip, not crash.
        (tmp_path / "rogue2.jsonl").write_text("[1, 2, 3]\n")
        (tmp_path / "rogue3.jsonl").write_text('"header"\n')
        report = aggregate_report(tmp_path)
        assert "1 sweep(s)" in report and "CONFLICT" not in report
