"""The unified experiment engine: spec grids, runner modes, store.

The determinism contract proved here is the engine's reason to exist:
per-cell sweeps are bit-identical between serial and process-pool
execution, stored results are replayable, and caching is exact.
"""

import json

import pytest

from repro.cluster import ClusterSpec
from repro.experiments.coallocation import (
    coallocation_cell,
    coallocation_spec,
    series_from_sweep,
)
from repro.experiments.engine import (
    CellContext,
    ResultStore,
    SweepRunner,
    derive_cell_seed,
    make_spec,
    parse_shard,
    resolve_jobs,
)

SMALL = ClusterSpec(kind="small")


def small_spec(seed: int = 5, demands=(4, 8),
               strategies=("spread", "concentrate"), name="eng-test"):
    return coallocation_spec(seed=seed, demands=demands,
                             strategies=strategies, cluster_spec=SMALL,
                             name=name)


def probe_cell(ctx: CellContext) -> dict:
    """Clusterless runner: echoes what the engine handed the cell."""
    return {"params": ctx.params, "seed": ctx.seed,
            "meta_x": ctx.meta.get("x")}


class TestSpecGrid:
    def test_cells_row_major_order(self):
        spec = make_spec("t", {"a": (1, 2), "b": ("x", "y")}, probe_cell)
        keys = [c.key for c in spec.cells()]
        assert keys == ["a=1,b='x'", "a=1,b='y'", "a=2,b='x'", "a=2,b='y'"]
        assert [c.index for c in spec.cells()] == [0, 1, 2, 3]

    def test_shape_and_count(self):
        spec = make_spec("t", {"a": (1, 2, 3), "b": (0,)}, probe_cell)
        assert spec.shape == (3, 1)
        assert spec.cell_count() == 3

    def test_seeds_derived_per_cell(self):
        spec = make_spec("t", {"a": (1, 2)}, probe_cell, master_seed=9)
        seeds = [c.seed for c in spec.cells()]
        assert len(set(seeds)) == 2
        assert seeds[0] == derive_cell_seed(9, "a=1")
        # Stable across enumerations and processes.
        assert seeds == [c.seed for c in spec.cells()]

    def test_fixed_seed_mode(self):
        spec = make_spec("t", {"a": (1, 2)}, probe_cell, master_seed=9,
                         fixed_seed=True)
        assert [c.seed for c in spec.cells()] == [9, 9]

    def test_content_hash_sensitivity(self):
        base = small_spec()
        assert base.content_hash() == small_spec().content_hash()
        assert (small_spec(seed=6).content_hash()
                != base.content_hash())
        assert (small_spec(demands=(4, 8, 12)).content_hash()
                != base.content_hash())
        other_cluster = coallocation_spec(seed=5, demands=(4, 8),
                                          name="eng-test")
        assert other_cluster.content_hash() != base.content_hash()

    def test_hash_stable_for_object_meta(self):
        from repro.apps import EPBenchmark

        a = make_spec("t", {"n": (1,)}, probe_cell,
                      meta={"app": EPBenchmark("B")})
        b = make_spec("t", {"n": (1,)}, probe_cell,
                      meta={"app": EPBenchmark("B")})
        assert a.content_hash() == b.content_hash()
        c = make_spec("t", {"n": (1,)}, probe_cell,
                      meta={"app": EPBenchmark("A")})
        assert c.content_hash() != a.content_hash()


class TestDeterminism:
    def test_serial_and_parallel_stores_byte_identical(self, tmp_path):
        spec = small_spec()
        serial = ResultStore(tmp_path / "serial")
        parallel = ResultStore(tmp_path / "parallel")
        res_s = SweepRunner(spec, jobs=1, store=serial).run()
        res_p = SweepRunner(spec, jobs=2, store=parallel).run()
        assert res_s.executed == res_p.executed == spec.cell_count()
        assert (serial.path_for(spec).read_bytes()
                == parallel.path_for(spec).read_bytes())
        assert res_s.values() == res_p.values()

    def test_second_run_hits_cache(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        first = SweepRunner(spec, store=store).run()
        again = SweepRunner(spec, store=store).run()
        assert first.executed == spec.cell_count() and first.cached == 0
        assert again.executed == 0
        assert again.cached == spec.cell_count()
        assert again.values() == first.values()

    def test_force_reexecutes(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        SweepRunner(spec, store=store).run()
        forced = SweepRunner(spec, store=store, force=True).run()
        assert forced.executed == spec.cell_count()
        assert forced.cached == 0

    def test_changed_spec_misses_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(small_spec(), store=store).run()
        other = SweepRunner(small_spec(seed=6), store=store).run()
        assert other.executed == other.spec.cell_count()


class TestStore:
    def test_roundtrip(self, tmp_path):
        spec = make_spec("t", {"a": (1, 2)}, probe_cell, meta={"x": 3})
        store = ResultStore(tmp_path)
        result = SweepRunner(spec, store=store).run()
        loaded = store.load(spec)
        assert set(loaded) == {c.key for c in spec.cells()}
        assert all(res.cached for res in loaded.values())
        assert loaded["a=1"].value == result.cells[0].value

    def test_hash_mismatch_is_cache_miss(self, tmp_path):
        spec = make_spec("t", {"a": (1,)}, probe_cell)
        store = ResultStore(tmp_path)
        SweepRunner(spec, store=store).run()
        path = store.path_for(spec)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["hash"] = "0" * 64
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        assert store.load(spec) == {}

    def test_invalidate(self, tmp_path):
        spec = make_spec("t", {"a": (1,)}, probe_cell)
        store = ResultStore(tmp_path)
        SweepRunner(spec, store=store).run()
        assert store.invalidate(spec) is True
        assert store.invalidate(spec) is False
        assert store.load(spec) == {}

    def test_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(make_spec("one", {"a": (1,)}, probe_cell),
                    store=store).run()
        SweepRunner(make_spec("two", {"a": (1,)}, probe_cell),
                    store=store).run()
        names = {e["spec"]["name"] for e in store.entries()}
        assert names == {"one", "two"}


class TestCheckpointResume:
    """Incremental store writes: .partial flush, resume, promotion."""

    def test_partial_written_and_promoted(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        result = SweepRunner(spec, store=store, checkpoint_every=1).run()
        # Completion promotes the checkpoint into the canonical file.
        assert store.path_for(spec).exists()
        assert not store.partial_path_for(spec).exists()
        assert result.executed == spec.cell_count()

    def test_resume_from_partial_executes_only_missing(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        full = SweepRunner(spec, store=store).run()
        # Simulate a kill after 3 of 4 cells: only a partial remains.
        store.path_for(spec).unlink()
        store.append_partial(spec, full.cells[:3])
        resumed = SweepRunner(spec, store=store).run()
        assert resumed.executed == 1
        assert resumed.cached == 3
        assert resumed.values() == full.values()
        # The resume promoted the sweep: canonical back, partial gone.
        assert store.path_for(spec).exists()
        assert not store.partial_path_for(spec).exists()

    def test_resume_only_partial_no_recompute_promotes(self, tmp_path):
        """A checkpoint covering every cell promotes without executing."""
        spec = small_spec()
        store = ResultStore(tmp_path)
        full = SweepRunner(spec, store=store).run()
        canonical = store.path_for(spec).read_bytes()
        store.path_for(spec).unlink()
        store.append_partial(spec, full.cells)
        resumed = SweepRunner(spec, store=store).run()
        assert resumed.executed == 0 and resumed.cached == spec.cell_count()
        assert store.path_for(spec).read_bytes() == canonical
        assert not store.partial_path_for(spec).exists()

    def test_canonical_file_independent_of_checkpoint_cadence(self, tmp_path):
        spec = small_spec()
        one = ResultStore(tmp_path / "one")
        many = ResultStore(tmp_path / "many")
        SweepRunner(spec, store=one, checkpoint_every=1).run()
        SweepRunner(spec, store=many, checkpoint_every=100).run()
        assert (one.path_for(spec).read_bytes()
                == many.path_for(spec).read_bytes())

    def test_parallel_run_checkpoints(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        SweepRunner(spec, jobs=2, store=store, checkpoint_every=1).run()
        assert store.path_for(spec).exists()
        assert not store.partial_path_for(spec).exists()

    def test_torn_tail_dropped(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        full = SweepRunner(spec, store=store).run()
        store.path_for(spec).unlink()
        store.append_partial(spec, full.cells)
        partial = store.partial_path_for(spec)
        partial.write_bytes(partial.read_bytes()[:-20])
        loaded = store.load_partial(spec)
        assert len(loaded) == spec.cell_count() - 1

    def test_append_after_torn_tail_preserves_new_records(self, tmp_path):
        """A resumed run appending after a mid-write kill must not merge
        its first record into the torn fragment."""
        spec = small_spec()
        store = ResultStore(tmp_path)
        full = SweepRunner(spec, store=store).run()
        store.path_for(spec).unlink()
        store.append_partial(spec, full.cells[:2])
        partial = store.partial_path_for(spec)
        partial.write_bytes(partial.read_bytes()[:-15])  # tear 2nd cell
        store.append_partial(spec, full.cells[2:])
        loaded = store.load_partial(spec)
        # Only the torn cell is lost; the post-tear appends all survive.
        assert len(loaded) == spec.cell_count() - 1
        assert full.cells[2].key in loaded and full.cells[3].key in loaded

    def test_stale_partial_is_cache_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        old = small_spec(seed=5)
        full = SweepRunner(old, store=store).run()
        store.path_for(old).unlink()
        store.append_partial(old, full.cells)
        renamed = store.partial_path_for(old).rename(
            store.partial_path_for(small_spec(seed=6)))
        assert renamed.exists()
        assert SweepRunner(small_spec(seed=6), store=store).run().cached == 0

    def test_failure_flushes_completed_cells(self, tmp_path):
        # Demand 2000 is infeasible on the small testbed: the sweep
        # raises, but the first (feasible) cells must reach the partial.
        spec = small_spec(demands=(4, 2000))
        store = ResultStore(tmp_path)
        with pytest.raises(RuntimeError):
            SweepRunner(spec, store=store, checkpoint_every=1).run()
        assert not store.path_for(spec).exists()
        flushed = store.load_partial(spec)
        assert {key.split(",")[1] for key in flushed} == {"n=4"}

    def test_invalidate_clears_partial(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        full = SweepRunner(spec, store=store).run()
        store.append_partial(spec, full.cells[:1])
        assert store.invalidate(spec) is True
        assert not store.partial_path_for(spec).exists()

    def test_bad_checkpoint_every_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(small_spec(), checkpoint_every=0)


class TestShard:
    """--shard K/N: deterministic grid partitioning, partial-only writes."""

    def test_parse_shard(self):
        assert parse_shard("1/3") == (1, 3)
        assert parse_shard("3/3") == (3, 3)
        for bad in ("0/3", "4/3", "1/0", "x/3", "1", "1/3/5", "-1/3"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_grid(self):
        spec = small_spec(demands=(4, 8, 12))  # 6 cells
        full = {c.key for c in spec.cells()}
        seen = []
        for k in (1, 2, 3):
            seen.append({c.key for c in spec.shard_cells((k, 3))})
        assert set.union(*seen) == full
        for i in range(3):
            for j in range(i + 1, 3):
                assert not seen[i] & seen[j]
        # Deterministic across enumerations.
        assert ({c.key for c in spec.shard_cells((2, 3))} == seen[1])

    def test_shard_shares_seed_schedule_with_full_grid(self):
        spec = small_spec()
        by_key = {c.key: c.seed for c in spec.cells()}
        for cell in spec.shard_cells((2, 2)):
            assert cell.seed == by_key[cell.key]

    def test_oversized_shard_count_gives_empty_slices(self):
        spec = small_spec()  # 4 cells
        assert spec.shard_cells((6, 6)) == []
        result = SweepRunner(spec, shard=(6, 6)).run()
        assert result.cells == [] and result.executed == 0

    def test_shard_writes_partial_never_canonical(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        result = SweepRunner(spec, store=store, shard=(1, 2)).run()
        assert result.shard == (1, 2)
        assert result.executed == len(spec.shard_cells((1, 2)))
        assert not store.path_for(spec).exists()
        flushed = store.load_partial(spec)
        assert set(flushed) == {c.key for c in spec.shard_cells((1, 2))}

    def test_shard_union_resumes_to_canonical(self, tmp_path):
        # Both shards into one store, then an unsharded invocation:
        # nothing left to execute, the checkpoint promotes, and the
        # canonical file equals a direct full run's byte for byte.
        spec = small_spec()
        direct = ResultStore(tmp_path / "direct")
        SweepRunner(spec, store=direct).run()
        store = ResultStore(tmp_path / "sharded")
        SweepRunner(spec, store=store, shard=(1, 2)).run()
        SweepRunner(spec, store=store, shard=(2, 2)).run()
        assert not store.path_for(spec).exists()
        promoted = SweepRunner(spec, store=store).run()
        assert promoted.executed == 0
        assert promoted.cached == spec.cell_count()
        assert (store.path_for(spec).read_bytes()
                == direct.path_for(spec).read_bytes())

    def test_shard_skips_cells_cached_in_canonical(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        SweepRunner(spec, store=store).run()
        again = SweepRunner(spec, store=store, shard=(1, 2)).run()
        assert again.executed == 0
        assert again.cached == len(spec.shard_cells((1, 2)))

    def test_shard_summary_mentions_slice(self):
        result = SweepRunner(small_spec(), shard=(2, 2)).run()
        assert "[shard 2/2]" in result.summary()

    def test_bad_shards_rejected(self, small_cluster):
        with pytest.raises(ValueError):
            SweepRunner(small_spec(), shard=(0, 3))
        with pytest.raises(ValueError):
            SweepRunner(small_spec(), shard=(4, 3))
        shared = small_spec()
        shared.shared_cluster = True
        with pytest.raises(ValueError):
            SweepRunner(shared, shard=(1, 2))
        with pytest.raises(ValueError):
            SweepRunner(small_spec(), cluster=small_cluster, shard=(1, 2))

    def test_shard_with_force_rejected(self, tmp_path):
        # force invalidates the WHOLE store, including the .partial
        # cells other shards checkpointed into the same directory.
        with pytest.raises(ValueError, match="force"):
            SweepRunner(small_spec(), store=ResultStore(tmp_path),
                        force=True, shard=(1, 2))


class TestResolveJobs:
    def test_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_zero_auto_sizes_from_cpu_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 5)
        assert resolve_jobs(0) == 5
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert resolve_jobs(0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestRunnerModes:
    def test_meta_and_seed_reach_cells(self):
        spec = make_spec("t", {"a": (1, 2)}, probe_cell, master_seed=4,
                         meta={"x": 42})
        result = SweepRunner(spec).run()
        assert [c.value["meta_x"] for c in result.cells] == [42, 42]
        assert [c.value["seed"] for c in result.cells] == \
            [derive_cell_seed(4, "a=1"), derive_cell_seed(4, "a=2")]

    def test_inline_cluster_replays_grid_order(self, small_cluster):
        spec = small_spec()
        result = SweepRunner(spec, cluster=small_cluster).run()
        series = series_from_sweep(result)
        assert set(series) == {"spread", "concentrate"}
        assert series["spread"].demands == [4, 8]
        # One process per host while hosts remain (spread invariant).
        assert series["spread"].point(4).total_hosts == 4

    def test_shared_cluster_cache_is_all_or_nothing(self, tmp_path):
        spec = small_spec()
        spec.shared_cluster = True
        store = ResultStore(tmp_path)
        first = SweepRunner(spec, store=store).run()
        assert first.executed == spec.cell_count()
        again = SweepRunner(spec, store=store).run()
        assert again.executed == 0
        assert again.cached == spec.cell_count()
        # Drop one cell line: the partial file must not be replayed.
        path = store.path_for(spec)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        third = SweepRunner(spec, store=store).run()
        assert third.executed == spec.cell_count()

    def test_cell_failure_propagates(self, tmp_path):
        spec = small_spec(demands=(4, 2000))  # 2000 is infeasible
        with pytest.raises(RuntimeError):
            SweepRunner(spec, store=ResultStore(tmp_path)).run()
        with pytest.raises(RuntimeError):
            SweepRunner(spec, jobs=2).run()

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(small_spec(), jobs=0)

    def test_inline_cluster_rejects_store_and_force(self, small_cluster,
                                                    tmp_path):
        with pytest.raises(ValueError):
            SweepRunner(small_spec(), cluster=small_cluster,
                        store=ResultStore(tmp_path))
        with pytest.raises(ValueError):
            SweepRunner(small_spec(), cluster=small_cluster, force=True)

    def test_hash_covers_runner_source(self):
        blob = small_spec().to_jsonable()
        assert len(blob["runner_src"]) == 64
        assert blob["runner"].endswith("coallocation_cell")

    def test_result_selectors(self):
        spec = make_spec("t", {"a": (1, 2), "b": (3,)}, probe_cell)
        result = SweepRunner(spec).run()
        assert result.value(a=1, b=3)["params"] == {"a": 1, "b": 3}
        assert len(result.select(b=3)) == 2
        with pytest.raises(KeyError):
            result.value(a=99)
        with pytest.raises(KeyError):
            result.value(b=3)  # ambiguous

    def test_summary_mentions_counts(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        SweepRunner(spec, store=store).run()
        text = SweepRunner(spec, store=store).run().summary()
        assert "0 executed" in text and "4 cached" in text


class TestCostKey:
    """Largest-cell-first pool scheduling (the ROADMAP adaptive-jobs
    item): ordering is a hint — seeds, hashes and bytes never move."""

    def spec_with_cost(self):
        # coallocation_spec wires demand_cost_key in by default.
        return coallocation_spec(seed=5, demands=(4, 16, 8),
                                 strategies=("spread",), cluster_spec=SMALL,
                                 name="eng-cost")

    def test_pool_order_sorts_expensive_first(self):
        spec = self.spec_with_cost()
        runner = SweepRunner(spec, jobs=2)
        ordered = runner.pool_order(spec.cells())
        assert [c.param_dict()["n"] for c in ordered] == [16, 8, 4]

    def test_pool_order_stable_on_ties(self):
        spec = coallocation_spec(seed=5, demands=(4,),
                                 strategies=("spread", "concentrate"),
                                 cluster_spec=SMALL, name="eng-tie")
        ordered = SweepRunner(spec, jobs=2).pool_order(spec.cells())
        # All costs equal: grid order must survive the sort.
        assert [c.index for c in ordered] == [0, 1]

    def test_without_cost_key_order_unchanged(self):
        import dataclasses

        spec = dataclasses.replace(small_spec(name="eng-noorder"),
                                   cost_key=None)
        cells = spec.cells()
        assert SweepRunner(spec, jobs=2).pool_order(cells) == list(cells)

    def test_cost_key_outside_content_hash(self):
        """A scheduling hint must not invalidate cached sweeps."""
        import dataclasses

        with_key = self.spec_with_cost()
        without = dataclasses.replace(with_key, cost_key=None)
        assert with_key.content_hash() == without.content_hash()
        assert "cost_key" not in json.dumps(with_key.to_jsonable())

    def test_ordering_changes_nothing_stored(self, tmp_path):
        """Pool runs with and without the hint produce byte-identical
        canonical stores (same seeds, same grid-order save)."""
        import dataclasses

        with_key = self.spec_with_cost()
        without = dataclasses.replace(with_key, cost_key=None)
        a = ResultStore(tmp_path / "hinted")
        b = ResultStore(tmp_path / "plain")
        res_a = SweepRunner(with_key, jobs=2, store=a).run()
        res_b = SweepRunner(without, jobs=2, store=b).run()
        assert [c.seed for c in res_a.cells] == [c.seed for c in res_b.cells]
        assert (a.path_for(with_key).read_bytes()
                == b.path_for(without).read_bytes())
