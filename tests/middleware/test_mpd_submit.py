"""Full submission protocol on the small cluster (Figure 1 steps 1-8)."""

import pytest

from repro.middleware.jobs import JobRequest, JobStatus


class TestHappyPath:
    def test_success_and_completions(self, small_cluster):
        res = small_cluster.submit_and_run(JobRequest(n=6, strategy="spread"))
        assert res.status is JobStatus.SUCCESS
        assert len(res.completions) == 6
        assert res.plan is not None
        assert res.plan.total_processes == 6

    def test_hostnames_match_plan(self, small_cluster):
        res = small_cluster.submit_and_run(JobRequest(n=6, strategy="spread"))
        planned = {(p.rank, p.replica): p.host.name
                   for p in res.allocation.placements}
        for key, payload in res.completions.items():
            assert payload["hostname"] == planned[key]

    def test_spread_low_latency_first(self, small_cluster):
        """alpha (local site) hosts must be used before beta/gamma."""
        res = small_cluster.submit_and_run(JobRequest(n=4, strategy="spread"))
        assert res.allocation.hosts_by_site() == {"alpha": 4}

    def test_concentrate_packs_local_site(self, small_cluster):
        res = small_cluster.submit_and_run(
            JobRequest(n=8, strategy="concentrate"))
        assert res.allocation.cores_by_site() == {"alpha": 8}
        assert res.allocation.hosts_by_site() == {"alpha": 2}

    def test_spread_overflows_to_remote_sites(self, small_cluster):
        res = small_cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        sites = res.allocation.hosts_by_site()
        assert sites["alpha"] == 4
        assert sites.get("beta", 0) == 4
        assert sites.get("gamma", 0) == 2

    def test_timings_ordered(self, small_cluster):
        res = small_cluster.submit_and_run(JobRequest(n=4))
        t = res.timings
        assert (t.submitted_at <= t.booked_at <= t.allocated_at
                <= t.launched_at <= t.finished_at)
        assert t.reservation_s > 0

    def test_reservations_released_between_jobs(self, small_cluster):
        """J=1 everywhere: a second job must still find every host."""
        first = small_cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        second = small_cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        assert first.status is JobStatus.SUCCESS
        assert second.status is JobStatus.SUCCESS
        assert len(second.allocation.used_hosts()) == 10

    def test_replication_plan(self, small_cluster):
        res = small_cluster.submit_and_run(
            JobRequest(n=4, r=2, strategy="spread"))
        assert res.status is JobStatus.SUCCESS
        assert len(res.completions) == 8
        for rank in range(4):
            hosts = {p.host.name
                     for p in res.allocation.replicas_of_rank(rank)}
            assert len(hosts) == 2


class TestFailurePaths:
    def test_infeasible_when_too_large(self, small_cluster):
        # 10 hosts x 4/2 cores = 28 capacity; ask for more.
        res = small_cluster.submit_and_run(JobRequest(n=29, strategy="spread"))
        assert res.status is JobStatus.INFEASIBLE
        assert "condition (b)" in res.failure_reason
        assert res.plan is None

    def test_infeasible_replication(self, small_cluster):
        # r=11 > 10 hosts -> condition (a) *via capacity*: with n=1,
        # c_i = min(P, 1) = 1 per host, so 10 < 11 fails (b) too; the
        # middleware reports whichever fired.
        res = small_cluster.submit_and_run(JobRequest(n=1, r=11))
        assert res.status is JobStatus.INFEASIBLE

    def test_unknown_strategy_is_infeasible_result(self, small_cluster):
        res = small_cluster.submit_and_run(
            JobRequest(n=2, strategy="warp-drive"))
        assert res.status is JobStatus.INFEASIBLE
        assert "unknown strategy" in res.failure_reason

    def test_dead_hosts_detected_and_skipped(self, small_cluster):
        cluster = small_cluster
        cluster.kill_hosts(["g1-1.gamma", "g1-2.gamma"])
        cluster.sim.run(until=cluster.sim.now + 0.01)
        res = cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        # gamma dead: only 8 hosts remain; 10 processes still fit
        # (alpha can double up), job succeeds without gamma.
        assert res.status is JobStatus.SUCCESS
        assert set(res.dead_peers) == {"g1-1.gamma", "g1-2.gamma"}
        assert "gamma" not in res.allocation.hosts_by_site()

    def test_dead_hosts_removed_from_cache(self, small_cluster):
        cluster = small_cluster
        cluster.kill_hosts(["b1-4.beta"])
        cluster.sim.run(until=cluster.sim.now + 0.01)
        cluster.submit_and_run(JobRequest(n=9, strategy="spread"))
        mpd = cluster.mpd()
        assert "b1-4.beta" not in mpd.peer.cache

    def test_concurrent_submission_rejected(self, small_cluster):
        mpd = small_cluster.mpd()
        gen1 = mpd.submit_job(JobRequest(n=2))
        proc1 = small_cluster.sim.process(gen1)
        with pytest.raises(RuntimeError, match="concurrent"):
            # Drive the second generator manually to trigger the guard.
            gen2 = mpd.submit_job(JobRequest(n=2))
            small_cluster.sim.process(gen2)
            small_cluster.sim.run_until_complete(proc1)

    def test_results_recorded_on_mpd(self, small_cluster):
        res = small_cluster.submit_and_run(JobRequest(n=2))
        assert small_cluster.mpd().results[res.job_id] is res


class TestCrashStateLoss:
    def test_crash_releases_held_reservations(self, small_cluster):
        """A crash loses volatile middleware state: reservations the RS
        held (booked, not yet started) must not pin ``J`` slots or
        survive into the host's next life."""
        victim = small_cluster.mpds["b1-2.beta"]
        victim.rs.handle_reserve(type("M", (), {
            "src": "a1-1.alpha",
            "payload": {"key": "k-held", "submitter": "a1-1.alpha",
                        "job_id": "j1", "reply_port": "rp"}})())
        assert victim.gatekeeper.held == {"k-held"}
        small_cluster.network.set_down("b1-2.beta")
        small_cluster._on_host_change("b1-2.beta", True)
        assert victim.gatekeeper.held == set()
        assert not victim.rs.reservations


class TestGatekeeperIntegration:
    def test_busy_host_refuses_and_job_routes_around(self, small_cluster):
        """Occupy one alpha host with a fake app; concentrate must skip it."""
        cluster = small_cluster
        victim = cluster.mpds["a1-2.alpha"]
        victim.gatekeeper.hold("occupied")
        victim.gatekeeper.start_application("occupied", "other-job", 2)
        res = cluster.submit_and_run(JobRequest(n=8, strategy="concentrate"))
        assert res.status is JobStatus.SUCCESS
        assert "a1-2.alpha" not in [h.name for h in res.allocation.used_hosts()]
        assert "a1-2.alpha" in res.refusals
        victim.gatekeeper.end_application("other-job")

    def test_p_limit_respected_in_plan(self, small_cluster):
        res = small_cluster.submit_and_run(
            JobRequest(n=20, strategy="concentrate"))
        per_host = res.allocation.processes_per_host()
        for host_name, count in per_host.items():
            cores = small_cluster.topology.host(host_name).cores
            assert count <= cores
