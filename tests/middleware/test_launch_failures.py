"""Launch-phase failures (steps 7-8) and determinism guarantees."""

import pytest

from repro.cluster import P2PMPICluster
from repro.middleware.config import MiddlewareConfig
from repro.middleware.jobs import JobRequest, JobStatus, JobTimings
from tests.conftest import make_small_topology


def make_cluster(seed=41, **config_kwargs):
    kwargs = dict(noise_sigma_ms=0.05, booking_retries=0)
    kwargs.update(config_kwargs)
    return P2PMPICluster(
        make_small_topology(), seed=seed,
        config=MiddlewareConfig(**kwargs),
        supernode_host="a1-1.alpha",
    ).boot()


class TestStartRefused:
    def test_forged_key_refused_and_job_fails(self):
        """A remote RS that lost the key (expiry) refuses the START."""
        cluster = make_cluster(reservation_ttl_s=60.0)

        # Sabotage: after booking, wipe one target RS's reservations so
        # its key check fails at START time.
        victim = cluster.mpds["a1-2.alpha"]
        original_holds = victim.rs.holds_key

        def dishonest(key):
            victim.rs.reservations.clear()
            victim.gatekeeper.held.clear()
            return False

        victim.rs.holds_key = dishonest
        res = cluster.submit_and_run(
            JobRequest(n=10, strategy="spread"))
        victim.rs.holds_key = original_holds
        assert res.status is JobStatus.LAUNCH_FAILED
        assert "refusal" in res.failure_reason

    def test_abort_cleans_started_hosts(self):
        """After a launch failure the started hosts must end their
        applications, leaving gatekeepers free for the next job."""
        cluster = make_cluster()
        victim = cluster.mpds["a1-2.alpha"]
        victim.rs.holds_key = lambda key: False
        failed = cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        assert failed.status is JobStatus.LAUNCH_FAILED
        # Restore honesty; everything must work again on all hosts.
        del victim.rs.holds_key  # back to class implementation
        cluster.sim.run(until=cluster.sim.now + 1.0)
        for mpd in cluster.mpds.values():
            assert mpd.gatekeeper.running == {}, mpd.host.name
        ok = cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        assert ok.status is JobStatus.SUCCESS

    def test_silent_start_target_times_out(self):
        """A host that dies between RESERVE_OK and START stays silent;
        the start deadline fires and the job aborts."""
        cluster = make_cluster(start_timeout_s=1.0, rs_timeout_s=1.0)
        # Kill a host right after booking: patch the gatekeeper hook to
        # crash the host when its reservation is held.
        victim_name = "b1-1.beta"
        victim = cluster.mpds[victim_name]
        original_hold = victim.gatekeeper.hold

        def hold_then_die(key):
            original_hold(key)
            cluster.network.set_down(victim_name)

        victim.gatekeeper.hold = hold_then_die
        res = cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        # Either the victim is in slist (silent at START -> launch
        # failure) or overbooking replaced it (success).
        assert res.status in (JobStatus.LAUNCH_FAILED, JobStatus.SUCCESS)
        if res.status is JobStatus.LAUNCH_FAILED:
            assert "silent" in res.failure_reason


class TestDeterminism:
    def _series(self, seed):
        cluster = P2PMPICluster(
            make_small_topology(), seed=seed,
            supernode_host="a1-1.alpha",
        ).boot()
        out = []
        for _ in range(3):
            # concentrate n=6: which alpha host gets 4 vs 2 processes
            # depends on the noisy latency ranking -> seed-sensitive.
            res = cluster.submit_and_run(
                JobRequest(n=6, strategy="concentrate"))
            out.append(sorted(res.allocation.processes_per_host().items()))
        return out

    def test_same_seed_same_allocations(self):
        assert self._series(9) == self._series(9)

    def test_different_seed_may_differ(self):
        # Not strictly guaranteed, but across three concentrate jobs on
        # ten noisy hosts two seeds coinciding is vanishingly unlikely.
        assert self._series(9) != self._series(10)


class TestJobTimings:
    def test_derived_metrics(self):
        t = JobTimings(submitted_at=1.0, booked_at=1.5, allocated_at=1.6,
                       launched_at=2.0, finished_at=5.0)
        assert t.reservation_s == pytest.approx(0.5)
        assert t.launch_s == pytest.approx(1.0)
        assert t.makespan_s == pytest.approx(3.0)
        assert t.total_s == pytest.approx(4.0)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            JobRequest(n=0)
        with pytest.raises(ValueError):
            JobRequest(n=1, r=0)
        assert JobRequest(n=3, r=2).total_processes == 6
