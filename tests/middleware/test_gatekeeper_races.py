"""Admission atomicity: the check-then-act race and its fix.

The legacy admission flow was ``can_accept`` (check) then ``hold``
(act).  Under the synchronous DES middleware nothing interleaves
between the two, but with concurrent submitters (the asyncio control
plane) both callers can pass the check before either acts — exceeding
the owner's ``J`` limit.  These tests pin the race on the legacy pair
and prove :meth:`Gatekeeper.try_admit` closes it, plus the
``admitted``-counter idempotency fix and a seeded property test of the
ledger invariants under arbitrary interleavings.
"""

import asyncio
import random

import pytest

from repro.middleware.config import OwnerPrefs
from repro.middleware.controlplane import run_virtual
from repro.middleware.gatekeeper import AdmissionError, Gatekeeper


def make_gk(j=1, p=4, denied=()):
    return Gatekeeper(host_name="h0",
                      prefs=OwnerPrefs(j_limit=j, p_limit=p,
                                       denied=frozenset(denied)))


class TestCheckThenActRace:
    """The pinned race: legacy pair overshoots J, try_admit does not."""

    @staticmethod
    async def _submit_legacy(gk, key):
        # check ...
        ok = gk.can_accept("user")
        # ... suspension point: any other submitter may run here ...
        await asyncio.sleep(0)
        # ... act.
        if ok:
            gk.hold(key)
            return True
        gk.refuse()
        return False

    @staticmethod
    async def _submit_atomic(gk, key):
        await asyncio.sleep(0)
        return gk.try_admit(key, "user")

    def test_legacy_pair_exceeds_j_limit(self):
        """The bug: two interleaved submitters both pass ``can_accept``
        with J=1, then both ``hold`` — J is exceeded."""
        gk = make_gk(j=1)

        async def race():
            return await asyncio.gather(
                self._submit_legacy(gk, "job-a"),
                self._submit_legacy(gk, "job-b"))

        assert run_virtual(race()) == [True, True]
        assert gk.applications_in_flight == 2  # > j_limit: the race
        assert gk.applications_in_flight > gk.prefs.j_limit

    def test_try_admit_closes_the_race(self):
        """Same interleaving, atomic admission: exactly one wins."""
        gk = make_gk(j=1)

        async def race():
            return await asyncio.gather(
                self._submit_atomic(gk, "job-a"),
                self._submit_atomic(gk, "job-b"))

        outcomes = run_virtual(race())
        assert sorted(outcomes) == [False, True]
        assert gk.applications_in_flight == 1
        assert gk.admitted == 1 and gk.refused == 1

    def test_try_admit_respects_denied_list(self):
        gk = make_gk(j=4, denied=["mallory"])
        assert not gk.try_admit("k1", "mallory")
        assert gk.refused == 1 and not gk.held
        assert gk.try_admit("k2", "alice")

    def test_try_admit_is_idempotent_per_key(self):
        """Re-admitting a held key is a no-op success: the J slot stays
        pinned once and no counter moves."""
        gk = make_gk(j=1)
        assert gk.try_admit("k", "user")
        assert gk.try_admit("k", "user")  # duplicate RESERVE delivery
        assert gk.applications_in_flight == 1
        assert gk.admitted == 1 and gk.refused == 0


class TestHoldIdempotency:
    """The counter fix: re-hold must not double-count ``admitted``."""

    def test_double_hold_counts_admitted_once(self):
        gk = make_gk(j=2)
        assert gk.hold("k") is True
        assert gk.hold("k") is False  # key already held
        assert gk.admitted == 1
        assert gk.applications_in_flight == 1

    def test_hold_returns_whether_key_was_new(self):
        gk = make_gk(j=2)
        assert gk.hold("a") is True
        assert gk.hold("b") is True
        assert gk.hold("a") is False
        assert gk.admitted == 2


class TestAdmissionPropertyInvariants:
    """Seeded random interleavings of try_admit/start/end never break
    the ledger: in_flight <= J and admitted - refused reconciles."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 99])
    def test_interleaved_lifecycle_invariants(self, seed):
        rng = random.Random(seed)
        j, p = rng.randint(1, 4), rng.randint(1, 6)
        gk = make_gk(j=j, p=p)
        held, running = [], []
        admitted_ok = refused = released = 0
        started = ended = 0
        for step in range(400):
            op = rng.random()
            if op < 0.45:
                key = f"k{step}"
                if gk.try_admit(key, "user"):
                    admitted_ok += 1
                    held.append(key)
                else:
                    refused += 1
            elif op < 0.65 and held:
                key = held.pop(rng.randrange(len(held)))
                n = rng.randint(1, p)
                gk.start_application(key, f"job-{key}", n)
                running.append(f"job-{key}")
                started += 1
            elif op < 0.8 and held:
                key = held.pop(rng.randrange(len(held)))
                assert gk.release_hold(key)
                released += 1
            elif running:
                job = running.pop(rng.randrange(len(running)))
                gk.end_application(job)
                ended += 1
            # The invariant under every prefix of every interleaving:
            assert gk.applications_in_flight <= j
            # Ledger reconciliation: every admission is either still
            # held, released, or became a started application.
            assert gk.admitted == admitted_ok
            assert gk.refused == refused
            assert gk.admitted - released - started == len(gk.held)
            assert started - ended == len(gk.running)

    def test_start_without_hold_still_raises(self):
        gk = make_gk()
        with pytest.raises(AdmissionError):
            gk.start_application("ghost", "job", 1)
