"""Booking retries (§3.2 "dynamically tries during a limited time")."""

from repro.cluster import P2PMPICluster
from repro.middleware.config import MiddlewareConfig
from repro.middleware.jobs import JobRequest, JobStatus
from tests.conftest import make_small_topology


def make_cluster(retries=2, backoff=0.5):
    return P2PMPICluster(
        make_small_topology(), seed=31,
        config=MiddlewareConfig(noise_sigma_ms=0.05,
                                booking_retries=retries,
                                retry_backoff_s=backoff),
        supernode_host="a1-1.alpha",
    ).boot()


class TestRetries:
    def test_first_try_success_is_one_attempt(self):
        cluster = make_cluster()
        res = cluster.submit_and_run(JobRequest(n=4))
        assert res.status is JobStatus.SUCCESS
        assert res.attempts == 1

    def test_transient_contention_resolved_by_retry(self):
        """A rival reservation blocking everything expires mid-backoff."""
        cluster = make_cluster(retries=2, backoff=1.0)
        # Hold every host with a foreign reservation (J=1 -> all NOK).
        for mpd in cluster.mpds.values():
            mpd.gatekeeper.hold(f"rival-{mpd.host.name}")

        def release_later():
            yield cluster.sim.timeout(2.0)
            for mpd in cluster.mpds.values():
                mpd.gatekeeper.release_hold(f"rival-{mpd.host.name}")

        cluster.sim.process(release_later())
        res = cluster.submit_and_run(JobRequest(n=4))
        assert res.status is JobStatus.SUCCESS
        assert res.attempts > 1

    def test_permanent_infeasibility_exhausts_attempts(self):
        cluster = make_cluster(retries=2, backoff=0.1)
        res = cluster.submit_and_run(JobRequest(n=99))
        assert res.status is JobStatus.INFEASIBLE
        assert res.attempts == 3  # 1 + 2 retries

    def test_zero_retries_config(self):
        cluster = make_cluster(retries=0)
        res = cluster.submit_and_run(JobRequest(n=99))
        assert res.status is JobStatus.INFEASIBLE
        assert res.attempts == 1

    def test_refusals_aggregated_across_attempts(self):
        cluster = make_cluster(retries=1, backoff=0.1)
        blocker = cluster.mpds["b1-1.beta"]
        blocker.gatekeeper.hold("rival")
        res = cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        # b1-1.beta refused in every attempted round but the job fits
        # without it (alpha hosts double up).
        assert res.status is JobStatus.SUCCESS
        assert "b1-1.beta" in res.refusals
        blocker.gatekeeper.release_hold("rival")
