"""The asyncio control plane: virtual time, gossip, admission, scale.

Covers the virtual-time loop's clock/determinism contract, the
registry-with-heartbeats service (register, heartbeat, reaper,
sequence-deduped gossip, proposals), the atomic admission path under
thousands of genuinely concurrent submitters, and the byte-level
determinism the ``multiuser2`` campaign relies on.
"""

import asyncio
import time

import pytest

from repro.cluster import build_small_cluster
from repro.middleware.controlplane import (ControlPlane, VirtualTimeLoop,
                                           run_multi_tenant, run_virtual)
from repro.overlay.gossip import GossipEnvelope, GossipView, PeerDigest


def small_plane():
    cluster = build_small_cluster(seed=5)
    gks = {name: mpd.gatekeeper for name, mpd in cluster.mpds.items()}
    return cluster, gks


def fairness_round(strategy="spread", tenants=50, rate=0.02, seed=42,
                   **kwargs):
    cluster, gks = small_plane()
    return run_multi_tenant(
        cluster.topology, gks, cluster.default_submitter,
        tenants=tenants, rate_hz=rate, strategy_name=strategy, seed=seed,
        **kwargs)


class TestVirtualTimeLoop:
    def test_sleep_advances_virtual_not_wall_time(self):
        async def main():
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await asyncio.sleep(3600.0)
            return loop.time() - t0

        wall0 = time.monotonic()
        elapsed = run_virtual(main())
        assert elapsed == pytest.approx(3600.0)
        assert time.monotonic() - wall0 < 5.0

    def test_timer_ordering_is_exact(self):
        """Callbacks fire in deadline order regardless of creation
        order — asyncio semantics preserved on the virtual clock."""
        async def main():
            order = []

            async def mark(delay, tag):
                await asyncio.sleep(delay)
                order.append(tag)

            await asyncio.gather(mark(3.0, "c"), mark(1.0, "a"),
                                 mark(2.0, "b"))
            return order

        assert run_virtual(main()) == ["a", "b", "c"]

    def test_idle_loop_with_pending_task_raises_deadlock(self):
        """A future nothing will ever set can never resolve in virtual
        time; the loop must raise instead of spinning forever."""
        async def main():
            await asyncio.get_running_loop().create_future()

        with pytest.raises(RuntimeError, match="deadlock"):
            run_virtual(main())

    def test_loop_is_reusable_per_run(self):
        assert run_virtual(asyncio.sleep(1.0, result="x")) == "x"
        assert run_virtual(asyncio.sleep(2.0, result="y")) == "y"

    def test_clock_starts_at_zero(self):
        loop = VirtualTimeLoop()
        try:
            assert loop.time() == 0.0
        finally:
            loop.close()


class TestControlPlaneService:
    def test_register_and_heartbeat_advance_seq(self):
        cluster, gks = small_plane()

        async def main():
            cp = ControlPlane(cluster.topology, gks,
                              cluster.default_submitter)
            first = await cp.register_peer("a1-1.alpha")
            beat = await cp.heartbeat("a1-1.alpha")
            return cp, first, beat

        cp, first, beat = run_virtual(main())
        assert beat.seq == first.seq + 1
        assert cp.view.get("a1-1.alpha").seq == beat.seq

    def test_reaper_marks_silent_peer_suspect(self):
        cluster, gks = small_plane()

        async def main():
            cp = ControlPlane(cluster.topology, gks,
                              cluster.default_submitter, stale_after_s=10.0)
            for name in sorted(gks):
                await cp.register_peer(name)
            reaper = asyncio.ensure_future(cp.reaper(5.0))
            # Only one peer keeps heartbeating; the rest go silent.
            for _ in range(6):
                await asyncio.sleep(5.0)
                await cp.heartbeat("a1-1.alpha")
            reaper.cancel()
            await asyncio.gather(reaper, return_exceptions=True)
            return cp

        cp = run_virtual(main())
        assert cp.view.get("a1-1.alpha").status == "online"
        suspects = [d.name for d in cp.view.digest()
                    if d.status == "suspect"]
        assert len(suspects) == len(gks) - 1
        assert "a1-1.alpha" not in suspects

    def test_gossip_envelope_duplicates_and_stale_dropped(self):
        cluster, gks = small_plane()

        async def main():
            cp = ControlPlane(cluster.topology, gks,
                              cluster.default_submitter)
            for name in sorted(gks):
                await cp.register_peer(name)
            replica = GossipView(owner="replica")
            env = cp.make_envelope()
            assert replica.apply(env) == len(gks)
            assert replica.apply(env) == 0  # duplicate envelope
            # Newer envelope with a fresher digest advances the view...
            await cp.heartbeat("a1-1.alpha")
            assert replica.apply(cp.make_envelope()) == 1
            # ...and a reordered stale digest cannot roll it back.
            stale = GossipEnvelope(origin="late", seq=1, entries=(
                PeerDigest(name="a1-1.alpha", seq=1, status="offline"),))
            replica.apply(stale)
            return replica

        replica = run_virtual(main())
        assert replica.get("a1-1.alpha").status == "online"
        assert replica.stale > 0

    def test_proposals_commit_and_abort(self):
        cluster, gks = small_plane()
        cp = ControlPlane(cluster.topology, gks, cluster.default_submitter)
        a = cp.propose("job-1", "t0", ["a1-1.alpha"])
        b = cp.propose("job-2", "t1", ["b1-1.beta"])
        assert (a.proposal_id, b.proposal_id) == (1, 2)
        cp.decide(a.proposal_id, accept=True)
        cp.decide(b.proposal_id, accept=False)
        assert [p.job_id for p in cp.proposals("committed")] == ["job-1"]
        assert [p.job_id for p in cp.proposals("aborted")] == ["job-2"]


class TestMultiTenantRound:
    def test_j_limit_never_exceeded_under_concurrency(self):
        """Sample every gatekeeper throughout the round: the in-flight
        count must never overshoot J while thousands of admissions
        interleave."""
        cluster, gks = small_plane()
        violations = []

        async def monitor():
            while True:
                await asyncio.sleep(0.5)
                for name, gk in gks.items():
                    if gk.applications_in_flight > gk.prefs.j_limit:
                        violations.append(name)

        async def main():
            from repro.middleware.controlplane import _campaign

            probe = asyncio.ensure_future(monitor())
            result = await _campaign(
                cluster.topology, gks, cluster.default_submitter,
                tenants=200, rate_hz=0.05, jobs_per_tenant=2, n=4,
                strategy_name="spread", seed=11, work_s=20.0,
                wan_penalty=0.25, heartbeat_period_s=30.0)
            probe.cancel()
            await asyncio.gather(probe, return_exceptions=True)
            return result

        result = run_virtual(main())
        assert violations == []
        assert result["refused"] > 0  # contention actually happened
        assert result["leaked_holds"] == 0
        assert result["stuck_in_flight"] == {}

    def test_thousand_tenants_complete_and_reconcile(self):
        result = fairness_round(tenants=1000, rate=0.01, seed=3)
        assert result["arrivals"] == 2000
        assert result["admitted"] + result["refused"] == 2000
        assert result["leaked_holds"] == 0
        assert result["stuck_in_flight"] == {}
        assert result["proposals_committed"] == result["admitted"]
        assert result["proposals_aborted"] == result["refused"]

    def test_round_is_deterministic_across_runs(self):
        """Same seed, fresh state: byte-identical ledger — the property
        the multiuser2 --jobs determinism rests on."""
        a = fairness_round(tenants=120, rate=0.03, seed=9)
        b = fairness_round(tenants=120, rate=0.03, seed=9)
        assert a == b

    def test_seed_changes_the_round(self):
        a = fairness_round(tenants=40, rate=0.03, seed=1)
        b = fairness_round(tenants=40, rate=0.03, seed=2)
        assert a != b

    def test_admission_latency_percentiles_ordered(self):
        result = fairness_round(tenants=80, rate=0.05, seed=4)
        assert (result["admit_p50_ms"] <= result["admit_p95_ms"]
                <= result["admit_p99_ms"])
        assert result["makespan_s"] > 0

    def test_input_validation(self):
        cluster, gks = small_plane()
        with pytest.raises(ValueError):
            run_multi_tenant(cluster.topology, gks,
                             cluster.default_submitter,
                             tenants=0, rate_hz=1.0)
        with pytest.raises(ValueError):
            run_multi_tenant(cluster.topology, gks,
                             cluster.default_submitter,
                             tenants=1, rate_hz=0.0)
