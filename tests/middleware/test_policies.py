"""Owner preferences, gatekeeper and key factory."""

import pytest

from repro.middleware.config import MiddlewareConfig, OwnerPrefs
from repro.middleware.gatekeeper import AdmissionError, Gatekeeper
from repro.middleware.keys import KeyFactory


class TestOwnerPrefs:
    def test_defaults(self):
        prefs = OwnerPrefs()
        assert prefs.j_limit == 1 and prefs.p_limit == 1

    def test_for_cores(self):
        prefs = OwnerPrefs.for_cores(4)
        assert prefs.p_limit == 4

    def test_denied(self):
        prefs = OwnerPrefs(denied=frozenset({"evil.host"}))
        assert not prefs.allows("evil.host")
        assert prefs.allows("good.host")

    @pytest.mark.parametrize("j,p", [(0, 1), (1, 0)])
    def test_invalid_limits(self, j, p):
        with pytest.raises(ValueError):
            OwnerPrefs(j_limit=j, p_limit=p)

    def test_paper_examples(self):
        """J=2,P=1: two users one process each; J=1,P=2: dual-core."""
        two_users = OwnerPrefs(j_limit=2, p_limit=1)
        dual_core = OwnerPrefs(j_limit=1, p_limit=2)
        assert two_users.j_limit == 2
        assert dual_core.p_limit == 2


class TestMiddlewareConfig:
    def test_booking_target_overbooks(self):
        config = MiddlewareConfig(overbook_factor=1.2, overbook_extra=5)
        assert config.booking_target(100) == 120
        assert config.booking_target(10) == 15  # extra dominates

    def test_no_overbooking_configurable(self):
        config = MiddlewareConfig(overbook_factor=1.0, overbook_extra=0)
        assert config.booking_target(50) == 50

    @pytest.mark.parametrize("kwargs", [
        {"overbook_factor": 0.5},
        {"overbook_extra": -1},
        {"rs_timeout_s": 0},
        {"ping_samples": 0},
    ])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            MiddlewareConfig(**kwargs)


class TestGatekeeper:
    def make(self, j=1, p=4):
        return Gatekeeper("h.s", OwnerPrefs(j_limit=j, p_limit=p))

    def test_accept_within_j(self):
        gk = self.make(j=2)
        assert gk.can_accept("x")
        gk.hold("k1")
        assert gk.can_accept("x")
        gk.hold("k2")
        assert not gk.can_accept("x")

    def test_denied_submitter(self):
        gk = Gatekeeper("h.s", OwnerPrefs(denied=frozenset({"bad"})))
        assert not gk.can_accept("bad")
        gk.refuse()
        assert gk.refused == 1

    def test_running_counts_against_j(self):
        gk = self.make(j=1)
        gk.hold("k")
        gk.start_application("k", "job1", 2)
        assert not gk.can_accept("x")
        gk.end_application("job1")
        assert gk.can_accept("x")

    def test_start_without_hold_raises(self):
        gk = self.make()
        with pytest.raises(AdmissionError):
            gk.start_application("nokey", "job", 1)

    def test_start_beyond_p_raises(self):
        gk = self.make(p=2)
        gk.hold("k")
        with pytest.raises(AdmissionError):
            gk.start_application("k", "job", 3)

    def test_double_start_same_job_raises(self):
        gk = self.make(j=2)
        gk.hold("k1")
        gk.start_application("k1", "job", 1)
        gk.hold("k2")
        with pytest.raises(AdmissionError):
            gk.start_application("k2", "job", 1)

    def test_end_unknown_job_raises(self):
        with pytest.raises(AdmissionError):
            self.make().end_application("ghost")

    def test_release_hold(self):
        gk = self.make()
        gk.hold("k")
        assert gk.release_hold("k")
        assert not gk.release_hold("k")
        assert gk.can_accept("x")

    def test_busy_processes(self):
        gk = self.make(j=2, p=4)
        gk.hold("k1")
        gk.start_application("k1", "j1", 3)
        assert gk.busy_processes == 3


class TestKeyFactory:
    def test_unique_keys(self):
        factory = KeyFactory("h.s", seed=1)
        k1 = factory.new_key("job1")
        k2 = factory.new_key("job1")
        assert k1.value != k2.value

    def test_deterministic_across_factories(self):
        a = KeyFactory("h.s", seed=1).new_key("job1")
        b = KeyFactory("h.s", seed=1).new_key("job1")
        assert a.value == b.value

    def test_submitter_recorded(self):
        key = KeyFactory("h.s").new_key("j")
        assert key.submitter == "h.s"
        assert key.job_id == "j"

    def test_seed_changes_keys(self):
        a = KeyFactory("h.s", seed=1).new_key("job1")
        b = KeyFactory("h.s", seed=2).new_key("job1")
        assert a.value != b.value
