"""Migratable copies at the middleware layer: quantum execution,
checkpoint hand-off between MPDs, reservation/gatekeeper accounting,
and crash resurrection through the diffusive balancer."""

from repro.alloc.diffusive import DiffusivePolicy
from repro.cluster import build_small_cluster
from repro.ft.migration import DiffusiveBalancer, MigratableWorkApp
from repro.middleware.jobs import JobRequest, JobStatus


def submit_async(cluster, request, submitter=None):
    mpd = cluster.mpd(submitter)
    return cluster.sim.process(mpd.submit_job(request))


class TestMigratableRun:
    def test_quiet_run_completes_without_moves(self):
        cluster = build_small_cluster(seed=3)
        result = cluster.submit_and_run(JobRequest(
            n=4, r=1, strategy="spread",
            app=MigratableWorkApp(duration_s=10.0, quantum_s=2.0)))
        assert result.status is JobStatus.SUCCESS
        assert len(result.completions) == 4
        assert result.migrations == []
        for payload in result.completions.values():
            assert payload["event"] == "done"
            assert payload["migrations"] == 0
        # Runtime table fully drained on every host.
        assert all(not mpd._copies for mpd in cluster.mpds.values())

    def test_completion_time_tracks_duration(self):
        cluster = build_small_cluster(seed=3)
        result = cluster.submit_and_run(JobRequest(
            n=2, r=1, strategy="spread",
            app=MigratableWorkApp(duration_s=8.0, quantum_s=2.0)))
        elapsed = result.timings.finished_at - result.timings.submitted_at
        assert 8.0 <= elapsed < 12.0


class TestCheckpointHandOff:
    def _run_with_move(self, move_at_s=5.0):
        cluster = build_small_cluster(seed=4)
        app = MigratableWorkApp(duration_s=20.0, quantum_s=2.0)
        job = submit_async(cluster, JobRequest(
            n=2, r=1, strategy="spread", app=app, tag="handoff"))

        def mover():
            yield cluster.sim.timeout(move_at_s)
            src = next(name for name in sorted(cluster.mpds)
                       if cluster.mpds[name].running_copies())
            job_id, rank, replica = cluster.mpds[src].running_copies()[0]
            snap = yield from cluster.mpds[src].migrate_copy_out(
                job_id, rank, replica)
            assert snap is not None
            dst = next(name for name in sorted(cluster.mpds)
                       if name != src
                       and not cluster.mpds[name].running_copies())
            assert cluster.mpds[dst].can_adopt(job_id, snap["submitter"])
            assert cluster.mpds[dst].adopt_copy(snap)
            return src, dst, snap

        mover_proc = cluster.sim.process(mover())
        result = cluster.sim.run_until_complete(job)
        return cluster, result, mover_proc.value

    def test_moved_copy_completes_elsewhere(self):
        cluster, result, (src, dst, snap) = self._run_with_move()
        assert result.status is JobStatus.SUCCESS
        assert len(result.completions) == 2
        moved = result.completions[(snap["rank"], snap["replica"])]
        assert moved["hostname"] == dst
        assert moved["migrations"] == 1

    def test_migrated_notice_reaches_submitter(self):
        _, result, (src, dst, snap) = self._run_with_move()
        assert len(result.migrations) == 1
        notice = result.migrations[0]
        assert notice["event"] == "migrated"
        assert notice["host"] == dst
        assert notice["rank"] == snap["rank"]
        assert 0.0 < notice["remaining_s"] <= 20.0

    def test_snapshot_preserves_remaining_work(self):
        _, _, (_, _, snap) = self._run_with_move(move_at_s=5.0)
        # ~5 s of 20 s done when frozen (live snapshot, sub-quantum
        # progress included).
        assert 10.0 < snap["remaining_s"] < 20.0
        assert snap["migrations"] == 0

    def test_accounting_clean_after_completion(self):
        cluster, result, (src, dst, _) = self._run_with_move()
        assert result.status is JobStatus.SUCCESS
        for name in (src, dst):
            mpd = cluster.mpds[name]
            assert not mpd._copies
            assert not mpd.gatekeeper.running
        # Every reservation slot was released: a follow-up job spanning
        # all hosts books cleanly.
        follow = cluster.submit_and_run(JobRequest(n=10, strategy="spread"))
        assert follow.status is JobStatus.SUCCESS

    def test_adopt_refused_on_down_host(self):
        cluster = build_small_cluster(seed=4)
        app = MigratableWorkApp(duration_s=20.0, quantum_s=2.0)
        job = submit_async(cluster, JobRequest(
            n=2, r=1, strategy="spread", app=app, tag="downdst"))

        def mover():
            yield cluster.sim.timeout(5.0)
            src = next(name for name in sorted(cluster.mpds)
                       if cluster.mpds[name].running_copies())
            job_id, rank, replica = cluster.mpds[src].running_copies()[0]
            snap = yield from cluster.mpds[src].migrate_copy_out(
                job_id, rank, replica)
            down = "g1-2.gamma"
            cluster.network.set_down(down)
            assert not cluster.mpds[down].adopt_copy(snap)
            # Bounce back home instead: the copy resumes at src.
            assert cluster.mpds[src].adopt_copy(snap)

        cluster.sim.process(mover())
        result = cluster.sim.run_until_complete(job)
        assert result.status is JobStatus.SUCCESS

    def test_migrate_out_unknown_copy_is_none(self):
        cluster = build_small_cluster(seed=4)

        def probe():
            snap = yield from cluster.mpds["a1-1.alpha"].migrate_copy_out(
                "nope", 0, 0)
            return snap

        proc = cluster.sim.process(probe())
        assert cluster.sim.run_until_complete(proc) is None


class TestResurrection:
    def test_balancer_rejoins_copy_from_dead_host(self):
        """r=1 + host death is fatal for a static job; the balancer's
        shadow checkpoint brings the copy back and the job completes."""
        cluster = build_small_cluster(seed=6)
        app = MigratableWorkApp(duration_s=24.0, quantum_s=2.0)
        job = submit_async(cluster, JobRequest(
            n=2, r=1, strategy="spread", app=app, tag="lazarus"))
        # threshold 10: diffusion disabled, resurrection isolated.
        balancer = DiffusiveBalancer(cluster, DiffusivePolicy(
            period_s=2.0, threshold=10.0))
        balancer.start()

        def killer():
            yield cluster.sim.timeout(7.0)
            submitter = cluster.default_submitter
            victim = next(name for name in sorted(cluster.mpds)
                          if name != submitter
                          and cluster.mpds[name].running_copies())
            cluster.network.set_down(victim)
            cluster._on_host_change(victim, True)
            return victim

        killer_proc = cluster.sim.process(killer())
        result = cluster.sim.run_until_complete(job)
        balancer.stop()

        victim = killer_proc.value
        assert result.status is JobStatus.SUCCESS
        assert len(result.completions) == 2
        assert balancer.rejoins == 1
        rejoined = [m for m in result.migrations if m["event"] == "rejoined"]
        assert len(rejoined) == 1
        assert rejoined[0]["host"] != victim

    def test_static_job_dies_without_balancer(self):
        """The control: same kill, no balancer -> the job fails."""
        cluster = build_small_cluster(seed=6)
        app = MigratableWorkApp(duration_s=24.0, quantum_s=2.0)
        job = submit_async(cluster, JobRequest(
            n=2, r=1, strategy="spread", app=app, tag="static"))

        def killer():
            yield cluster.sim.timeout(7.0)
            submitter = cluster.default_submitter
            victim = next(name for name in sorted(cluster.mpds)
                          if name != submitter
                          and cluster.mpds[name].running_copies())
            cluster.network.set_down(victim)
            cluster._on_host_change(victim, True)

        cluster.sim.process(killer())
        result = cluster.sim.run_until_complete(job)
        assert result.status is not JobStatus.SUCCESS
