"""Reservation Service protocol (§4.2 steps 3-5, 7)."""

import pytest

from repro.middleware.config import OwnerPrefs
from repro.middleware.gatekeeper import Gatekeeper
from repro.middleware.reservation import ReservationService
from repro.net.transport import Network
from repro.overlay.messages import RS_PORT
from repro.sim import Simulator
from tests.conftest import make_small_topology


@pytest.fixture
def env():
    sim = Simulator(seed=5)
    topo = make_small_topology()
    net = Network(sim, topo)
    for host in topo.all_hosts():
        net.register(host.name)

    def make_rs(name, j=1, p=4, denied=frozenset(), ttl=60.0):
        gk = Gatekeeper(name, OwnerPrefs(j_limit=j, p_limit=p, denied=denied))
        rs = ReservationService(sim, net, name, gk, ttl_s=ttl)
        sim.process(rs.service())
        return rs

    return sim, net, make_rs


def reserve(sim, net, target, key, submitter="a1-1.alpha"):
    """Send RESERVE from submitter, return the reply message."""

    def body():
        net.send(submitter, target, RS_PORT, "RESERVE",
                 payload={"key": key, "job_id": "job", "submitter": submitter,
                          "reply_port": "t"}, size_bytes=64)
        msg = yield net.receive(submitter, "t")
        return msg

    return sim.run_until_complete(sim.process(body()))


class TestReserve:
    def test_ok_carries_p_limit(self, env):
        sim, net, make_rs = env
        make_rs("b1-1.beta", p=4)
        msg = reserve(sim, net, "b1-1.beta", "k1")
        assert msg.kind == "RESERVE_OK"
        assert msg.payload["p_limit"] == 4

    def test_j_limit_refuses_second(self, env):
        sim, net, make_rs = env
        make_rs("b1-1.beta", j=1)
        assert reserve(sim, net, "b1-1.beta", "k1").kind == "RESERVE_OK"
        assert reserve(sim, net, "b1-1.beta", "k2").kind == "RESERVE_NOK"

    def test_denied_submitter_refused(self, env):
        sim, net, make_rs = env
        make_rs("b1-1.beta", denied=frozenset({"a1-1.alpha"}))
        assert reserve(sim, net, "b1-1.beta", "k1").kind == "RESERVE_NOK"

    def test_cancel_frees_slot(self, env):
        sim, net, make_rs = env
        rs = make_rs("b1-1.beta", j=1)
        reserve(sim, net, "b1-1.beta", "k1")
        net.send("a1-1.alpha", "b1-1.beta", RS_PORT, "CANCEL",
                 payload={"key": "k1"}, size_bytes=64)
        sim.run()
        assert not rs.holds_key("k1")
        assert reserve(sim, net, "b1-1.beta", "k2").kind == "RESERVE_OK"

    def test_ttl_expiry_frees_slot(self, env):
        sim, net, make_rs = env
        rs = make_rs("b1-1.beta", j=1, ttl=10.0)
        reserve(sim, net, "b1-1.beta", "k1")

        def wait():
            yield sim.timeout(11.0)

        sim.run_until_complete(sim.process(wait()))
        assert not rs.holds_key("k1")
        assert reserve(sim, net, "b1-1.beta", "k2").kind == "RESERVE_OK"


class TestKeyVerification:
    def test_holds_key_after_ok(self, env):
        sim, net, make_rs = env
        rs = make_rs("b1-1.beta")
        reserve(sim, net, "b1-1.beta", "k1")
        assert rs.holds_key("k1")
        assert not rs.holds_key("forged")

    def test_consume_marks_used(self, env):
        sim, net, make_rs = env
        rs = make_rs("b1-1.beta")
        reserve(sim, net, "b1-1.beta", "k1")
        rs.consume("k1")
        assert not rs.holds_key("k1")

    def test_consumed_key_not_cancellable(self, env):
        sim, net, make_rs = env
        rs = make_rs("b1-1.beta")
        reserve(sim, net, "b1-1.beta", "k1")
        rs.consume("k1")
        assert not rs.cancel("k1")

    def test_finish_forgets(self, env):
        sim, net, make_rs = env
        rs = make_rs("b1-1.beta")
        reserve(sim, net, "b1-1.beta", "k1")
        rs.consume("k1")
        rs.finish("k1")
        assert "k1" not in rs.reservations


class TestBrokering:
    def test_broadcast_reserve_reaches_all(self, env):
        sim, net, make_rs = env
        submitter_gk = Gatekeeper("a1-1.alpha", OwnerPrefs.for_cores(4))
        submitter_rs = ReservationService(sim, net, "a1-1.alpha", submitter_gk)
        for name in ("b1-1.beta", "b1-2.beta", "g1-1.gamma"):
            make_rs(name)

        def body():
            submitter_rs.broadcast_reserve(
                ["b1-1.beta", "b1-2.beta", "g1-1.gamma"],
                key="k", job_id="j", reply_port="replies")
            got = []
            for _ in range(3):
                msg = yield net.receive("a1-1.alpha", "replies")
                got.append((msg.src, msg.kind))
            return got

        got = sim.run_until_complete(sim.process(body()))
        assert {src for src, _ in got} == {"b1-1.beta", "b1-2.beta",
                                           "g1-1.gamma"}
        assert all(kind == "RESERVE_OK" for _, kind in got)
