"""Property-based tests of the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=40))
@settings(max_examples=150, deadline=None)
def test_completion_times_are_sorted_delays(delays):
    """N independent sleepers finish exactly at their delays, and the
    observed completion order is the sorted delay order (FIFO ties)."""
    sim = Simulator()
    finished = []

    def sleeper(sim, delay, idx):
        yield sim.timeout(delay)
        finished.append((sim.now, idx))

    for idx, delay in enumerate(delays):
        sim.process(sleeper(sim, delay, idx))
    sim.run()
    times = [t for t, _ in finished]
    assert times == sorted(times)
    assert len(finished) == len(delays)
    # Every sleeper finished at exactly its own delay.
    by_idx = {idx: t for t, idx in finished}
    for idx, delay in enumerate(delays):
        assert by_idx[idx] == delay


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False),
                       min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_clock_never_goes_backwards(delays):
    sim = Simulator()
    observed = []

    def sleeper(sim, delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(sleeper(sim, delay))
    last = -1.0
    while sim.peek() != float("inf"):
        sim.step()
        assert sim.now >= last
        last = sim.now


@given(items=st.lists(st.integers(), min_size=0, max_size=60))
@settings(max_examples=100, deadline=None)
def test_store_preserves_order_and_content(items):
    """A store is a lossless FIFO pipe."""
    sim = Simulator()
    box = Store(sim)
    out = []

    def producer(sim, box):
        for item in items:
            yield box.put(item)

    def consumer(sim, box):
        for _ in range(len(items)):
            item = yield box.get()
            out.append(item)

    sim.process(producer(sim, box))
    done = sim.process(consumer(sim, box))
    sim.run_until_complete(done)
    assert out == items


@given(seed=st.integers(min_value=0, max_value=2 ** 31),
       n=st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_rng_streams_reproducible(seed, n):
    a = Simulator(seed=seed).rng.stream("test").random(n)
    b = Simulator(seed=seed).rng.stream("test").random(n)
    assert (a == b).all()
