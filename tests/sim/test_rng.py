"""Deterministic named random streams."""

import numpy as np

from repro.sim.rng import RngRegistry, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("x") == stable_hash64("x")

    def test_distinct_names(self):
        assert stable_hash64("a") != stable_hash64("b")

    def test_64_bit_range(self):
        for name in ("", "x", "a.very.long.stream.name" * 10):
            assert 0 <= stable_hash64(name) < 2 ** 64


class TestRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(5).stream("net").random(10)
        b = RngRegistry(5).stream("net").random(10)
        assert np.array_equal(a, b)

    def test_different_seed_differs(self):
        a = RngRegistry(5).stream("net").random(10)
        b = RngRegistry(6).stream("net").random(10)
        assert not np.array_equal(a, b)

    def test_different_names_independent(self):
        reg = RngRegistry(5)
        a = reg.stream("one").random(10)
        b = reg.stream("two").random(10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("s") is reg.stream("s")
        assert "s" in reg

    def test_new_consumer_does_not_perturb_existing(self):
        reg1 = RngRegistry(9)
        _ = reg1.stream("a").random(3)
        after_other = reg1.stream("b").random(3)

        reg2 = RngRegistry(9)
        direct = reg2.stream("b").random(3)
        assert np.array_equal(after_other, direct)

    def test_fork_independence(self):
        reg = RngRegistry(4)
        forked = reg.fork("rep1")
        assert forked.seed != reg.seed
        a = reg.stream("x").random(5)
        b = forked.stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_fork_deterministic(self):
        a = RngRegistry(4).fork("rep1").stream("x").random(5)
        b = RngRegistry(4).fork("rep1").stream("x").random(5)
        assert np.array_equal(a, b)
