"""Event-loop semantics of the simulation kernel."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.core import Infinity


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        def body(sim):
            yield sim.timeout(3.5)
            return sim.now

        assert sim.run_until_complete(sim.process(body(sim))) == 3.5

    def test_run_until_sets_clock_even_if_queue_drains(self, sim):
        sim.timeout(1.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_in_past_raises(self, sim):
        def body(sim):
            yield sim.timeout(5.0)

        sim.run_until_complete(sim.process(body(sim)))
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)


class TestOrdering:
    def test_fifo_within_same_time(self, sim):
        order = []

        def body(sim, label):
            yield sim.timeout(1.0)
            order.append(label)

        for label in "abcde":
            sim.process(body(sim, label))
        sim.run()
        assert order == list("abcde")

    def test_time_ordering(self, sim):
        order = []

        def body(sim, delay, label):
            yield sim.timeout(delay)
            order.append(label)

        sim.process(body(sim, 3.0, "late"))
        sim.process(body(sim, 1.0, "early"))
        sim.process(body(sim, 2.0, "mid"))
        sim.run()
        assert order == ["early", "mid", "late"]

    def test_events_processed_counter(self, sim):
        def body(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.run_until_complete(sim.process(body(sim)))
        assert sim.events_processed >= 3


class TestRunControl:
    def test_step_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek_empty_is_infinity(self, sim):
        assert sim.peek() == Infinity

    def test_stop_halts_run(self, sim):
        seen = []

        def body(sim):
            for i in range(100):
                yield sim.timeout(1.0)
                seen.append(i)
                if i == 4:
                    sim.stop()

        sim.process(body(sim))
        sim.run()
        assert seen[-1] == 4
        assert sim.now == 5.0

    def test_run_until_complete_returns_value(self, sim):
        def body(sim):
            yield sim.timeout(1.0)
            return "payload"

        assert sim.run_until_complete(sim.process(body(sim))) == "payload"

    def test_run_until_complete_raises_process_error(self, sim):
        def body(sim):
            yield sim.timeout(1.0)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            sim.run_until_complete(sim.process(body(sim)))

    def test_run_until_complete_limit(self, sim):
        def body(sim):
            yield sim.timeout(100.0)

        with pytest.raises(SimulationError):
            sim.run_until_complete(sim.process(body(sim)), limit=1.0)


class TestDeterminism:
    def _run(self, seed):
        sim = Simulator(seed=seed)
        trace = []

        def body(sim, name):
            rng = sim.rng.stream(f"test.{name}")
            for _ in range(5):
                yield sim.timeout(float(rng.random()))
                trace.append((round(sim.now, 12), name))

        for name in ("x", "y"):
            sim.process(body(sim, name))
        sim.run()
        return trace

    def test_same_seed_same_trace(self):
        assert self._run(1) == self._run(1)

    def test_different_seed_different_trace(self):
        assert self._run(1) != self._run(2)

    def test_trace_hook_called(self):
        hits = []
        sim = Simulator(trace=lambda t, e: hits.append(t))

        def body(sim):
            yield sim.timeout(1.0)

        sim.run_until_complete(sim.process(body(sim)))
        assert hits
