"""Stores and resources."""

import pytest

from repro.sim import FilterStore, PriorityStore, Resource, Store
from repro.sim.core import SimulationError


class TestStore:
    def test_put_get_fifo(self, sim):
        box = Store(sim)

        def producer(sim, box):
            for i in range(3):
                yield box.put(i)

        def consumer(sim, box):
            out = []
            for _ in range(3):
                item = yield box.get()
                out.append(item)
            return out

        sim.process(producer(sim, box))
        proc = sim.process(consumer(sim, box))
        assert sim.run_until_complete(proc) == [0, 1, 2]

    def test_get_blocks_until_put(self, sim):
        box = Store(sim)

        def consumer(sim, box):
            item = yield box.get()
            return (sim.now, item)

        def producer(sim, box):
            yield sim.timeout(5.0)
            yield box.put("late")

        proc = sim.process(consumer(sim, box))
        sim.process(producer(sim, box))
        assert sim.run_until_complete(proc) == (5.0, "late")

    def test_capacity_blocks_put(self, sim):
        box = Store(sim, capacity=1)
        done = []

        def producer(sim, box):
            yield box.put("a")
            yield box.put("b")  # blocks until a get
            done.append(sim.now)

        def consumer(sim, box):
            yield sim.timeout(3.0)
            item = yield box.get()
            return item

        sim.process(producer(sim, box))
        proc = sim.process(consumer(sim, box))
        assert sim.run_until_complete(proc) == "a"
        sim.run()
        assert done and done[0] == 3.0

    def test_len(self, sim):
        box = Store(sim)
        box.put("x")
        sim.run()
        assert len(box) == 1

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)


class TestFilterStore:
    def test_predicate_matching(self, sim):
        box = FilterStore(sim)

        def producer(sim, box):
            yield box.put({"tag": 1, "v": "one"})
            yield box.put({"tag": 2, "v": "two"})

        def consumer(sim, box):
            msg = yield box.get(lambda m: m["tag"] == 2)
            return msg["v"]

        sim.process(producer(sim, box))
        proc = sim.process(consumer(sim, box))
        assert sim.run_until_complete(proc) == "two"

    def test_unmatched_getter_not_starved_by_earlier_getter(self, sim):
        box = FilterStore(sim)
        got = []

        def get_tag(sim, box, tag):
            yield box.get(lambda m: m["tag"] == tag)
            got.append((tag, sim.now))

        def producer(sim, box):
            yield sim.timeout(1.0)
            yield box.put({"tag": "b"})
            yield sim.timeout(1.0)
            yield box.put({"tag": "a"})

        sim.process(get_tag(sim, box, "a"))  # registered first, matches later
        sim.process(get_tag(sim, box, "b"))
        sim.process(producer(sim, box))
        sim.run()
        assert dict(got) == {"b": 1.0, "a": 2.0}

    def test_default_predicate_accepts_all(self, sim):
        box = FilterStore(sim)
        box.put("x")

        def consumer(sim, box):
            item = yield box.get()
            return item

        assert sim.run_until_complete(sim.process(consumer(sim, box))) == "x"


class TestPriorityStore:
    def test_pops_smallest(self, sim):
        box = PriorityStore(sim)
        for item in [(3, "c"), (1, "a"), (2, "b")]:
            box.put(item)
        sim.run()  # all items stored before any get

        def consumer(sim, box):
            out = []
            for _ in range(3):
                item = yield box.get()
                out.append(item[1])
            return out

        proc = sim.process(consumer(sim, box))
        assert sim.run_until_complete(proc) == ["a", "b", "c"]

    def test_ties_fifo(self, sim):
        box = PriorityStore(sim)
        for label in ("first", "second"):
            box.put((1, label))
        sim.run()

        def consumer(sim, box):
            a = yield box.get()
            b = yield box.get()
            return [a[1], b[1]]

        assert sim.run_until_complete(
            sim.process(consumer(sim, box))) == ["first", "second"]


class TestResource:
    def test_grant_within_capacity(self, sim):
        res = Resource(sim, capacity=2)

        def body(sim, res):
            req = res.request()
            yield req
            return res.in_use

        assert sim.run_until_complete(sim.process(body(sim, res))) == 1

    def test_queueing_and_release(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(sim, res, label, hold):
            req = res.request()
            yield req
            order.append((label, sim.now))
            yield sim.timeout(hold)
            res.release(req)

        sim.process(worker(sim, res, "a", 2.0))
        sim.process(worker(sim, res, "b", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0)]

    def test_release_idle_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_cancel_pending_request(self, sim):
        res = Resource(sim, capacity=1)

        def holder(sim, res):
            req = res.request()
            yield req
            yield sim.timeout(10.0)
            res.release(req)

        sim.process(holder(sim, res))
        sim.run(until=1.0)
        waiting = res.request()
        waiting.cancel()
        sim.run()
        assert res.available == 1  # holder released; waiter never took it

    def test_available(self, sim):
        res = Resource(sim, capacity=3)
        assert res.available == 3

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)
