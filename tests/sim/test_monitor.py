"""Monitor recording and querying."""

import numpy as np

from repro.sim import Monitor


class TestMonitor:
    def test_record_and_select(self):
        mon = Monitor()
        mon.record(0.0, "alloc", "h1", site="nancy")
        mon.record(1.0, "alloc", "h2", site="lyon")
        assert len(mon.select("alloc")) == 2
        assert [r.value for r in mon.select("alloc", site="lyon")] == ["h2"]

    def test_values(self):
        mon = Monitor()
        for i in range(3):
            mon.record(i, "k", i * 10)
        assert mon.values("k") == [0, 10, 20]

    def test_counters(self):
        mon = Monitor()
        mon.count("jobs")
        mon.count("jobs", 2)
        assert mon.counters["jobs"] == 3

    def test_series(self):
        mon = Monitor()
        mon.record(0.5, "load", 1.0)
        mon.record(1.5, "load", 3.0)
        times, values = mon.series("load")
        assert np.allclose(times, [0.5, 1.5])
        assert np.allclose(values, [1.0, 3.0])

    def test_group_count_and_sum(self):
        mon = Monitor()
        mon.record(0, "proc", 2, site="a")
        mon.record(0, "proc", 3, site="a")
        mon.record(0, "proc", 5, site="b")
        assert mon.group_count("proc", "site") == {"a": 2, "b": 1}
        assert mon.group_sum("proc", "site") == {"a": 5.0, "b": 5.0}

    def test_tag_default(self):
        mon = Monitor()
        mon.record(0, "k", 1)
        assert mon.select("k")[0].tag("missing", "dflt") == "dflt"

    def test_merge(self):
        a, b = Monitor(), Monitor()
        a.record(0, "k", 1)
        a.count("c", 1)
        b.record(1, "k", 2)
        b.count("c", 2)
        merged = a.merge(b)
        assert len(merged.select("k")) == 2
        assert merged.counters["c"] == 3

    def test_clear(self):
        mon = Monitor()
        mon.record(0, "k", 1)
        mon.count("c")
        mon.clear()
        assert not mon.records and not mon.counters
