"""Process driver: lifecycle, interrupts, error handling."""

import pytest

from repro.sim import Interrupt, SimulationError


class TestLifecycle:
    def test_process_is_event(self, sim):
        def child(sim):
            yield sim.timeout(2.0)
            return "done"

        def parent(sim):
            value = yield sim.process(child(sim))
            return value

        assert sim.run_until_complete(sim.process(parent(sim))) == "done"

    def test_is_alive(self, sim):
        def body(sim):
            yield sim.timeout(1.0)

        proc = sim.process(body(sim))
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive

    def test_return_value_none_by_default(self, sim):
        def body(sim):
            yield sim.timeout(0.0)

        assert sim.run_until_complete(sim.process(body(sim))) is None

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_yield_non_event_fails_process(self, sim):
        def body(sim):
            yield "not an event"

        proc = sim.process(body(sim))
        with pytest.raises(SimulationError, match="non-event"):
            sim.run_until_complete(proc)

    def test_exception_in_body_fails_process(self, sim):
        def body(sim):
            yield sim.timeout(1.0)
            raise KeyError("inner")

        with pytest.raises(KeyError):
            sim.run_until_complete(sim.process(body(sim)))

    def test_immediate_return(self, sim):
        def body(sim):
            return 17
            yield  # pragma: no cover

        assert sim.run_until_complete(sim.process(body(sim))) == 17


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        causes = []

        def victim(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                causes.append(intr.cause)
            return "recovered"

        def killer(sim, proc):
            yield sim.timeout(2.0)
            proc.interrupt("failure-X")

        proc = sim.process(victim(sim))
        sim.process(killer(sim, proc))
        assert sim.run_until_complete(proc) == "recovered"
        assert causes == ["failure-X"]
        assert sim.now == 2.0

    def test_interrupt_finished_process_is_noop(self, sim):
        def body(sim):
            yield sim.timeout(1.0)

        proc = sim.process(body(sim))
        sim.run()
        proc.interrupt("late")  # must not raise
        sim.run()

    def test_unhandled_interrupt_fails_process(self, sim):
        def victim(sim):
            yield sim.timeout(100.0)

        def killer(sim, proc):
            yield sim.timeout(1.0)
            proc.interrupt()

        proc = sim.process(victim(sim))
        sim.process(killer(sim, proc))
        with pytest.raises(Interrupt):
            sim.run_until_complete(proc)

    def test_self_interrupt_rejected(self, sim):
        def body(sim):
            me = sim.active_process
            me.interrupt("self")
            yield sim.timeout(1.0)

        with pytest.raises(SimulationError, match="itself"):
            sim.run_until_complete(sim.process(body(sim)))

    def test_interrupted_process_can_rewait(self, sim):
        def victim(sim):
            target = sim.timeout(10.0, "slept")
            try:
                value = yield target
            except Interrupt:
                value = yield target  # re-wait the same event
            return value

        def killer(sim, proc):
            yield sim.timeout(1.0)
            proc.interrupt()

        proc = sim.process(victim(sim))
        sim.process(killer(sim, proc))
        assert sim.run_until_complete(proc) == "slept"
        assert sim.now == 10.0

    def test_interrupt_preempts_same_time_events(self, sim):
        order = []

        def victim(sim):
            try:
                yield sim.timeout(5.0)
                order.append("timeout")
            except Interrupt:
                order.append("interrupt")

        def killer(sim, proc):
            yield sim.timeout(5.0)
            proc.interrupt()

        proc = sim.process(victim(sim))
        # killer scheduled first so its t=5 event processes first
        sim.process(killer(sim, proc))
        sim.run()
        assert order in (["timeout"], ["interrupt"])  # deterministic below
        # The victim was registered first, so its timeout callback runs
        # before the killer acts: deterministic outcome is "timeout".
        assert order == ["timeout"]


class TestConcurrency:
    def test_many_processes(self, sim):
        results = []

        def body(sim, i):
            yield sim.timeout(i * 0.1)
            results.append(i)
            return i

        procs = [sim.process(body(sim, i)) for i in range(50)]
        sim.run_until_complete(sim.all_of(procs))
        assert results == sorted(results)
        assert len(results) == 50

    def test_ping_pong_via_events(self, sim):
        log = []

        def ping(sim, ready, done):
            yield ready
            log.append("ping")
            done.succeed()

        def pong(sim, ready, done):
            yield sim.timeout(1.0)
            ready.succeed()
            yield done
            log.append("pong")

        ready, done = sim.event(), sim.event()
        sim.process(ping(sim, ready, done))
        proc = sim.process(pong(sim, ready, done))
        sim.run_until_complete(proc)
        assert log == ["ping", "pong"]
