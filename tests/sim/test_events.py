"""Event primitives: triggering, conditions, failure propagation."""

import pytest

from repro.sim import AnyOf, Simulator, SimulationError
from repro.sim.events import Timeout


class TestEvent:
    def test_initial_state(self, sim):
        evt = sim.event("e")
        assert not evt.triggered and not evt.processed
        assert evt.ok is None

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_succeed(self, sim):
        evt = sim.event().succeed(42)
        assert evt.triggered and evt.ok
        sim.run()
        assert evt.processed and evt.value == 42

    def test_double_trigger_raises(self, sim):
        evt = sim.event().succeed()
        with pytest.raises(SimulationError):
            evt.succeed()
        with pytest.raises(SimulationError):
            evt.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_unhandled_failure_crashes_run(self, sim):
        sim.event().fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_defused_failure_is_silent(self, sim):
        evt = sim.event()
        evt.fail(RuntimeError("quiet"))
        evt.defused = True
        sim.run()  # no raise

    def test_trigger_mirrors_success(self, sim):
        src = sim.event().succeed("v")
        dst = sim.event()
        dst.trigger(src)
        sim.run()
        assert dst.value == "v"

    def test_trigger_untriggered_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().trigger(sim.event())

    def test_callback_after_processed_replays(self, sim):
        evt = sim.event().succeed(5)
        sim.run()
        got = []
        evt.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [5]


class TestTimeout:
    def test_timeout_value(self, sim):
        def body(sim):
            value = yield sim.timeout(1.0, value="tick")
            return value

        assert sim.run_until_complete(sim.process(body(sim))) == "tick"

    def test_timeout_is_pretriggered(self, sim):
        assert Timeout(sim, 5.0).triggered


class TestConditions:
    def test_anyof_returns_first(self, sim):
        def body(sim):
            slow = sim.timeout(5.0, "slow")
            fast = sim.timeout(1.0, "fast")
            res = yield sim.any_of([slow, fast])
            return list(res.values())

        assert sim.run_until_complete(sim.process(body(sim))) == ["fast"]
        assert sim.now == 1.0

    def test_allof_waits_for_all(self, sim):
        def body(sim):
            t1 = sim.timeout(1.0, "a")
            t2 = sim.timeout(2.0, "b")
            res = yield sim.all_of([t1, t2])
            return sorted(res.values())

        assert sim.run_until_complete(sim.process(body(sim))) == ["a", "b"]
        assert sim.now == 2.0

    def test_empty_condition_fires_immediately(self, sim):
        def body(sim):
            res = yield sim.all_of([])
            return res

        assert sim.run_until_complete(sim.process(body(sim))) == {}

    def test_condition_failure_propagates(self, sim):
        def body(sim):
            bad = sim.event()
            bad.fail(RuntimeError("child failed"), delay=1.0)
            yield sim.all_of([bad, sim.timeout(5.0)])

        with pytest.raises(RuntimeError, match="child failed"):
            sim.run_until_complete(sim.process(body(sim)))

    def test_anyof_with_already_processed_child(self, sim):
        done = sim.event().succeed("early")
        sim.run()

        def body(sim):
            res = yield sim.any_of([done, sim.timeout(10.0)])
            return list(res.values())

        assert sim.run_until_complete(sim.process(body(sim))) == ["early"]

    def test_condition_across_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            AnyOf(sim, [sim.event(), other.event()])

    def test_anyof_value_mapping_keys_are_events(self, sim):
        def body(sim):
            fast = sim.timeout(1.0, "fast")
            slow = sim.timeout(9.0, "slow")
            res = yield sim.any_of([fast, slow])
            assert fast in res and slow not in res
            return res[fast]

        assert sim.run_until_complete(sim.process(body(sim))) == "fast"
