"""Point-to-point semantics of the message-level MPI engine."""

import pytest

from repro.mpi import MPIWorld, MPIProcessFailure
from repro.mpi.api import ANY_SOURCE
from repro.net.transport import Network
from repro.sim import Simulator
from tests.conftest import make_small_topology


@pytest.fixture
def world_factory():
    def make(n, spread_sites=False):
        sim = Simulator(seed=3)
        topo = make_small_topology()
        net = Network(sim, topo)
        hosts = topo.all_hosts()
        if not spread_sites:
            hosts = [h for h in hosts if h.site == "alpha"]
        chosen = (hosts * ((n // len(hosts)) + 1))[:n]
        return MPIWorld(sim, net, chosen, job_id="t")

    return make


class TestSendRecv:
    def test_basic_roundtrip(self, world_factory):
        world = world_factory(2)

        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(1, {"x": 42}, size_bytes=64)
                return None
            src, tag, data = yield from comm.recv(source=0)
            return (src, tag, data["x"])

        results = world.run(prog)
        assert results[1] == (0, 0, 42)

    def test_tag_matching(self, world_factory):
        world = world_factory(2)

        def prog(comm):
            if comm.rank == 0:
                comm.isend(1, "late", tag=7)
                comm.isend(1, "urgent", tag=9)
                yield comm.sim.timeout(0)
                return None
            _s, _t, urgent = yield from comm.recv(source=0, tag=9)
            _s, _t, late = yield from comm.recv(source=0, tag=7)
            return (urgent, late)

        assert world.run(prog)[1] == ("urgent", "late")

    def test_any_source(self, world_factory):
        world = world_factory(3)

        def prog(comm):
            if comm.rank == 0:
                out = []
                for _ in range(2):
                    src, _t, _d = yield from comm.recv(source=ANY_SOURCE)
                    out.append(src)
                return sorted(out)
            yield from comm.send(0, comm.rank, size_bytes=8)
            return None

        assert world.run(prog)[0] == [1, 2]

    def test_sendrecv_exchange(self, world_factory):
        world = world_factory(2)

        def prog(comm):
            other = 1 - comm.rank
            _s, _t, got = yield from comm.sendrecv(
                other, f"from{comm.rank}", 32, source=other, tag=1)
            return got

        assert world.run(prog) == ["from1", "from0"]

    def test_dest_out_of_range(self, world_factory):
        world = world_factory(2)

        def prog(comm):
            comm.isend(5, "x")
            yield comm.sim.timeout(0)

        with pytest.raises(MPIProcessFailure):
            world.run(prog)

    def test_program_exception_wrapped(self, world_factory):
        world = world_factory(2)

        def prog(comm):
            yield comm.sim.timeout(0)
            raise ValueError("app bug")

        with pytest.raises(MPIProcessFailure):
            world.run(prog)


class TestWorldConstruction:
    def test_empty_world_rejected(self, world_factory):
        sim = Simulator()
        topo = make_small_topology()
        net = Network(sim, topo)
        with pytest.raises(ValueError):
            MPIWorld(sim, net, [], job_id="x")

    def test_from_plan(self):
        from repro.alloc import ReservedHost, build_plan, get_strategy

        sim = Simulator()
        topo = make_small_topology()
        net = Network(sim, topo)
        slist = [ReservedHost(h, p_limit=h.cores)
                 for h in topo.hosts_in_site("alpha")]
        plan = build_plan(get_strategy("spread"), slist, n=4, r=2)
        world = MPIWorld.from_plan(sim, net, plan, replica=1)
        assert world.size == 4
        # replica-1 hosts differ from replica-0 hosts per rank
        world0 = MPIWorld.from_plan(sim, net, plan, replica=0)
        assert any(a.name != b.name
                   for a, b in zip(world.hosts, world0.hosts))

    def test_from_plan_bad_replica(self):
        from repro.alloc import ReservedHost, build_plan, get_strategy

        sim = Simulator()
        topo = make_small_topology()
        net = Network(sim, topo)
        slist = [ReservedHost(h, p_limit=h.cores)
                 for h in topo.hosts_in_site("alpha")]
        plan = build_plan(get_strategy("spread"), slist, n=4, r=1)
        with pytest.raises(ValueError):
            MPIWorld.from_plan(sim, net, plan, replica=1)

    def test_two_worlds_coexist(self, world_factory):
        sim = Simulator()
        topo = make_small_topology()
        net = Network(sim, topo)
        hosts = topo.hosts_in_site("alpha")[:2]
        w1 = MPIWorld(sim, net, hosts, job_id="one")
        w2 = MPIWorld(sim, net, hosts, job_id="two")

        def prog(label):
            def inner(comm):
                if comm.rank == 0:
                    yield from comm.send(1, label, size_bytes=8)
                    return None
                _s, _t, data = yield from comm.recv(source=0)
                return data
            return inner

        p1 = w1.spawn(prog("one"))
        p2 = w2.spawn(prog("two"))
        sim.run()
        assert p1[1].value == "one"
        assert p2[1].value == "two"
