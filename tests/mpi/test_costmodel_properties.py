"""Property-based tests of the collective cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.costmodel import CollectiveCostModel, CostParams
from tests.conftest import make_small_topology

TOPO = make_small_topology()
ALL_HOSTS = TOPO.all_hosts()


def layout_for(model, n):
    hosts = (ALL_HOSTS * ((n // len(ALL_HOSTS)) + 1))[:n]
    return model.layout(hosts)


@st.composite
def model_and_sizes(draw):
    params = CostParams(
        sw_overhead_s=draw(st.floats(1e-6, 1e-4)),
        msg_fixed_s=draw(st.floats(0, 5e-3)),
        msg_fixed_small_s=draw(st.floats(0, 5e-4)),
        ser_per_byte_s=draw(st.floats(0, 1e-7)),
        wan_extra_s=draw(st.floats(0, 2e-3)),
    )
    n = draw(st.integers(2, 24))
    nbytes = draw(st.integers(0, 1 << 20))
    return CollectiveCostModel(TOPO, params), n, nbytes


@given(case=model_and_sizes())
@settings(max_examples=80, deadline=None)
def test_all_costs_positive_and_finite(case):
    model, n, nbytes = case
    layout = layout_for(model, n)
    for value in (
        model.barrier_time(layout),
        model.bcast_time(layout, nbytes),
        model.reduce_time(layout, nbytes),
        model.allreduce_time(layout, nbytes),
        model.gather_time(layout, nbytes),
        model.alltoall_time(layout, nbytes),
    ):
        assert 0 < value < 1e6


@given(case=model_and_sizes(),
       extra=st.integers(1, 1 << 20))
@settings(max_examples=80, deadline=None)
def test_costs_monotone_in_bytes(case, extra):
    """More bytes never makes a collective cheaper (same size class)."""
    model, n, nbytes = case
    layout = layout_for(model, n)
    threshold = model.params.eager_threshold_bytes
    bigger = nbytes + extra
    # Crossing the eager threshold changes the fixed-cost class, which
    # is allowed to jump; compare within a class only.
    if (nbytes <= threshold) != (bigger <= threshold):
        return
    assert (model.allreduce_time(layout, bigger)
            >= model.allreduce_time(layout, nbytes) - 1e-12)
    assert (model.alltoall_time(layout, bigger)
            >= model.alltoall_time(layout, nbytes) - 1e-12)


@given(case=model_and_sizes())
@settings(max_examples=60, deadline=None)
def test_costs_monotone_in_group_size(case):
    """Adding ranks never makes alltoall cheaper (every rank gains
    partners), and a barrier is at worst mildly non-monotone (the
    dissemination partner pattern (rank+2^k) mod p crosses sites
    differently for different p — true of the real algorithm too)."""
    model, n, nbytes = case
    small = layout_for(model, n)
    big = layout_for(model, n + 3)
    assert (model.alltoall_time(big, nbytes)
            >= model.alltoall_time(small, nbytes) - 1e-12)
    assert model.barrier_time(big) >= 0.5 * model.barrier_time(small)


@given(case=model_and_sizes())
@settings(max_examples=60, deadline=None)
def test_p2p_symmetry_same_bytes(case):
    """p2p cost between two ranks is direction-independent."""
    model, n, nbytes = case
    layout = layout_for(model, n)
    for i, j in ((0, n - 1), (0, 1)):
        assert model.p2p_time(layout, i, j, nbytes) == pytest.approx(
            model.p2p_time(layout, j, i, nbytes))


@given(nbytes=st.integers(0, 1 << 16))
@settings(max_examples=40, deadline=None)
def test_single_rank_collectives_trivial(nbytes):
    model = CollectiveCostModel(TOPO, CostParams())
    layout = model.layout([ALL_HOSTS[0]])
    assert model.allreduce_time(layout, nbytes) == pytest.approx(
        model.params.sw_overhead_s)
    assert model.alltoall_time(layout, nbytes) == pytest.approx(
        model.params.sw_overhead_s)


@given(case=model_and_sizes())
@settings(max_examples=60, deadline=None)
def test_wan_groups_cost_more_than_lan(case):
    """With identical co-location structure, a group spanning sites is
    never cheaper than one inside a site (only latency differs)."""
    model, n, nbytes = case
    alpha = [h for h in ALL_HOSTS if h.site == "alpha"]
    beta = [h for h in ALL_HOSTS if h.site == "beta"]
    lan_pool = alpha[:4]
    wan_pool = alpha[:2] + beta[:2]  # same 4-host tiling, one WAN hop
    lan = model.layout((lan_pool * ((n // 4) + 1))[:n])
    wan = model.layout((wan_pool * ((n // 4) + 1))[:n])
    assert model.barrier_time(wan) >= model.barrier_time(lan) - 1e-12
    assert (model.allreduce_time(wan, nbytes)
            >= model.allreduce_time(lan, nbytes) - 1e-12)
