"""Collective correctness on the message-level engine (values + sizes)."""

import pytest

from repro.mpi import MAX, MIN, MPIWorld, PROD, SUM
from repro.net.transport import Network
from repro.sim import Simulator
from tests.conftest import make_small_topology

SIZES = [1, 2, 3, 4, 5, 7, 8]


def make_world(n, seed=0):
    sim = Simulator(seed=seed)
    topo = make_small_topology()
    net = Network(sim, topo)
    hosts = topo.all_hosts()
    chosen = (hosts * ((n // len(hosts)) + 1))[:n]
    return MPIWorld(sim, net, chosen, job_id=f"coll{n}")


class TestBarrier:
    @pytest.mark.parametrize("n", SIZES)
    def test_barrier_synchronises(self, n):
        world = make_world(n)
        finish_times = []

        def prog(comm):
            # Stagger arrivals; everyone must leave after the latest.
            yield comm.sim.timeout(0.01 * comm.rank)
            yield from comm.barrier()
            finish_times.append(comm.sim.now)
            return None

        world.run(prog)
        latest_arrival = 0.01 * (n - 1)
        assert all(t >= latest_arrival for t in finish_times)


class TestBcast:
    @pytest.mark.parametrize("n", SIZES)
    def test_bcast_from_zero(self, n):
        world = make_world(n)

        def prog(comm):
            data = yield from comm.bcast("payload" if comm.rank == 0 else None)
            return data

        assert world.run(prog) == ["payload"] * n

    def test_bcast_nonzero_root(self):
        world = make_world(5)

        def prog(comm):
            data = yield from comm.bcast(
                comm.rank if comm.rank == 3 else None, root=3)
            return data

        assert world.run(prog) == [3] * 5


class TestReduce:
    @pytest.mark.parametrize("n", SIZES)
    def test_reduce_sum_to_zero(self, n):
        world = make_world(n)

        def prog(comm):
            total = yield from comm.reduce(comm.rank + 1, op=SUM)
            return total

        results = world.run(prog)
        assert results[0] == n * (n + 1) // 2
        assert all(r is None for r in results[1:])

    def test_reduce_max_nonzero_root(self):
        world = make_world(6)

        def prog(comm):
            value = yield from comm.reduce(comm.rank, op=MAX, root=2)
            return value

        results = world.run(prog)
        assert results[2] == 5
        assert results[0] is None


class TestAllreduce:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("op,expect", [
        (SUM, lambda n: n * (n + 1) // 2),
        (MAX, lambda n: n),
        (MIN, lambda n: 1),
    ])
    def test_allreduce_ops(self, n, op, expect):
        world = make_world(n)

        def prog(comm):
            value = yield from comm.allreduce(comm.rank + 1, op=op)
            return value

        assert world.run(prog) == [expect(n)] * n

    def test_allreduce_prod(self):
        world = make_world(4)

        def prog(comm):
            value = yield from comm.allreduce(2, op=PROD)
            return value

        assert world.run(prog) == [16] * 4


class TestGatherScatter:
    @pytest.mark.parametrize("n", SIZES)
    def test_gather(self, n):
        world = make_world(n)

        def prog(comm):
            data = yield from comm.gather(comm.rank * 10)
            return data

        results = world.run(prog)
        assert results[0] == [r * 10 for r in range(n)]
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("n", SIZES)
    def test_scatter(self, n):
        world = make_world(n)

        def prog(comm):
            values = [f"v{i}" for i in range(n)] if comm.rank == 0 else None
            data = yield from comm.scatter(values)
            return data

        assert world.run(prog) == [f"v{i}" for i in range(n)]

    def test_scatter_requires_full_list(self):
        world = make_world(3)

        def prog(comm):
            values = ["only-one"] if comm.rank == 0 else None
            data = yield from comm.scatter(values)
            return data

        with pytest.raises(Exception):
            world.run(prog)


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("n", SIZES)
    def test_allgather(self, n):
        world = make_world(n)

        def prog(comm):
            data = yield from comm.allgather(comm.rank ** 2)
            return data

        expected = [r ** 2 for r in range(n)]
        assert world.run(prog) == [expected] * n

    @pytest.mark.parametrize("n", SIZES)
    def test_alltoall_routing(self, n):
        world = make_world(n)

        def prog(comm):
            outgoing = [f"{comm.rank}->{dest}" for dest in range(n)]
            incoming = yield from comm.alltoall(outgoing)
            return incoming

        results = world.run(prog)
        for rank, incoming in enumerate(results):
            assert incoming == [f"{src}->{rank}" for src in range(n)]

    def test_alltoallv_sizes_checked(self):
        world = make_world(3)

        def prog(comm):
            out = yield from comm.alltoallv(["a", "b", "c"], sizes=[1, 2])
            return out

        with pytest.raises(Exception):
            world.run(prog)

    def test_back_to_back_collectives_do_not_cross(self):
        """Consecutive collectives use distinct tags: no aliasing."""
        world = make_world(5)

        def prog(comm):
            first = yield from comm.allreduce(comm.rank, op=SUM)
            second = yield from comm.allreduce(comm.rank * 2, op=SUM)
            third = yield from comm.allgather(comm.rank)
            return (first, second, third)

        results = world.run(prog)
        assert all(r == (10, 20, [0, 1, 2, 3, 4]) for r in results)
