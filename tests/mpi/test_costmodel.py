"""Cost model: formula sanity + cross-validation vs the message engine."""

import pytest

from repro.mpi import CollectiveCostModel, CostParams, MPIWorld, SUM
from repro.net.transport import Network
from repro.sim import Simulator
from tests.conftest import make_small_topology


@pytest.fixture(scope="module")
def topo():
    return make_small_topology()


@pytest.fixture(scope="module")
def model(topo):
    return CollectiveCostModel(topo, CostParams(sw_overhead_s=20e-6))


def layout_of(model, topo, names):
    return model.layout([topo.host(n) for n in names])


class TestP2PFormula:
    def test_same_host_is_overhead_only(self, model, topo):
        lay = layout_of(model, topo, ["a1-1.alpha", "a1-1.alpha"])
        assert model.p2p_time(lay, 0, 1, 0) == pytest.approx(20e-6)

    def test_wan_latency_dominates_small(self, model, topo):
        lay = layout_of(model, topo, ["a1-1.alpha", "b1-1.beta"])
        t = model.p2p_time(lay, 0, 1, 8)
        assert t == pytest.approx(0.005, rel=0.05)

    def test_bytes_term(self, model, topo):
        lay = layout_of(model, topo, ["a1-1.alpha", "a1-2.alpha"])
        small = model.p2p_time(lay, 0, 1, 0)
        big = model.p2p_time(lay, 0, 1, 10_000_000)
        assert big - small == pytest.approx(0.08, rel=0.01)  # 10MB @ 1Gb/s

    def test_nic_share_slows_colocated(self, topo):
        params = CostParams(nic_share=True)
        model = CollectiveCostModel(topo, params)
        solo = layout_of(model, topo, ["a1-1.alpha", "a1-2.alpha"])
        packed = layout_of(model, topo,
                           ["a1-1.alpha", "a1-1.alpha", "a1-2.alpha"])
        t_solo = model.p2p_time(solo, 0, 1, 1_000_000)
        t_packed = model.p2p_time(packed, 0, 2, 1_000_000)
        assert t_packed > t_solo

    def test_fixed_cost_switches_at_threshold(self, topo):
        params = CostParams(msg_fixed_s=5e-3, msg_fixed_small_s=1e-4,
                            eager_threshold_bytes=1000)
        model = CollectiveCostModel(topo, params)
        lay = layout_of(model, topo, ["a1-1.alpha", "a1-2.alpha"])
        small = model.p2p_time(lay, 0, 1, 100)
        large = model.p2p_time(lay, 0, 1, 2000)
        assert large - small > 4e-3

    def test_wan_extra_applies_cross_site_only(self, topo):
        params = CostParams(wan_extra_s=2e-3)
        model = CollectiveCostModel(topo, params)
        lan = layout_of(model, topo, ["a1-1.alpha", "a1-2.alpha"])
        wan = layout_of(model, topo, ["a1-1.alpha", "b1-1.beta"])
        assert model.p2p_time(wan, 0, 1, 0) - model.p2p_time(lan, 0, 1, 0) \
            == pytest.approx(2e-3 + (0.005 - 0.1 / 2 / 1000), rel=0.01)


class TestCollectiveFormulas:
    def test_barrier_grows_with_latency(self, model, topo):
        local = layout_of(model, topo, ["a1-1.alpha", "a1-2.alpha"])
        remote = layout_of(model, topo, ["a1-1.alpha", "g1-1.gamma"])
        assert (model.barrier_time(remote) > model.barrier_time(local))

    def test_bcast_rounds_logarithmic(self, model, topo):
        names8 = [f"a1-{i % 4 + 1}.alpha" for i in range(8)]
        names2 = names8[:2]
        t8 = model.bcast_time(layout_of(model, topo, names8), 8)
        t2 = model.bcast_time(layout_of(model, topo, names2), 8)
        # 3 rounds vs 1 round, same edge cost magnitude
        assert 2.0 < t8 / t2 < 4.5

    def test_allreduce_single_rank(self, model, topo):
        lay = layout_of(model, topo, ["a1-1.alpha"])
        assert model.allreduce_time(lay, 8) == pytest.approx(20e-6)

    def test_alltoall_scales_with_partner_count(self, model, topo):
        small = layout_of(model, topo, ["a1-1.alpha", "a1-2.alpha"])
        big = layout_of(model, topo,
                        [f"a1-{i + 1}.alpha" for i in range(4)] * 2)
        assert (model.alltoall_time(big, 100)
                > model.alltoall_time(small, 100))

    def test_gather_root_drains_messages(self, model, topo):
        lay = layout_of(model, topo, ["a1-1.alpha", "a1-2.alpha",
                                      "a1-3.alpha", "a1-4.alpha"])
        t = model.gather_time(lay, 1000)
        assert t > 3 * 20e-6

    def test_describe(self, model, topo):
        lay = layout_of(model, topo, ["a1-1.alpha", "b1-1.beta"])
        text = model.describe(lay)
        assert "alpha:1" in text and "beta:1" in text


class TestCrossValidation:
    """Closed forms must track the message-level engine within 2x."""

    @pytest.mark.parametrize("n", [2, 4, 5, 8])
    @pytest.mark.parametrize("collective", ["barrier", "allreduce", "alltoall"])
    def test_formula_vs_engine(self, topo, n, collective):
        sim = Simulator(seed=1)
        net = Network(sim, topo)  # noiseless latency
        hosts = topo.all_hosts()
        chosen = (hosts * ((n // len(hosts)) + 1))[:n]
        world = MPIWorld(sim, net, chosen, job_id=f"xv{n}{collective}")
        nbytes = 1000

        def prog(comm):
            start = comm.sim.now
            if collective == "barrier":
                yield from comm.barrier()
            elif collective == "allreduce":
                yield from comm.allreduce(1.0, op=SUM, size_bytes=nbytes)
            else:
                yield from comm.alltoall([comm.rank] * comm.size,
                                         size_bytes=nbytes)
            return comm.sim.now - start

        elapsed = max(world.run(prog))
        model = CollectiveCostModel(topo, CostParams(
            sw_overhead_s=net.sw_overhead_s))
        lay = model.layout(chosen)
        predicted = {
            "barrier": model.barrier_time(lay),
            "allreduce": model.allreduce_time(lay, nbytes),
            "alltoall": model.alltoall_time(lay, nbytes),
        }[collective]
        assert predicted == pytest.approx(elapsed, rel=1.0), (
            f"{collective} n={n}: engine {elapsed:.6f}s vs model "
            f"{predicted:.6f}s")
        # And strictly the same order of magnitude:
        assert 0.3 < predicted / elapsed < 3.0
