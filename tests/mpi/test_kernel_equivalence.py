"""Bit-exact equivalence of the vector and reference cost kernels.

The perf tentpole's correctness contract (DESIGN.md §11): for every
collective, over randomized plans (varying p, site mixes, colocation,
replication census, all WAN contention modes), the ``kernel="vector"``
path must agree with the retained scalar ``kernel="reference"`` path
*bit for bit* — not approximately.  Both paths share the same scalar
arithmetic bodies and summation order, so any drift is a bug.

Also pins the supporting layers: the rank x rank ``pairwise_times``
matrix against scalar ``p2p_time``, layout-memo clone isolation under
caller mutation, the deterministic work counters, and
``IncrementalPlanScore`` against batch ``ContentionModel`` under
add/remove sequences.
"""

import dataclasses
import random

import pytest

from repro.cluster import DEFAULT_COST_PARAMS
from repro.grid5000.builder import build_topology
from repro.mpi.costmodel import CollectiveCostModel
from repro.net.contention import ContentionModel, IncrementalPlanScore

TOPO = build_topology()
ALL_HOSTS = TOPO.all_hosts()
MODES = ("plan", "fixed", "none")

#: Message sizes straddling the eager threshold (6144) and zero.
SIZES = (0, 8, 4096, 8192, 1_000_000)


def random_plan(rng, p):
    """Random host multiset: 1-4 sites, colocation via replacement."""
    sites = rng.sample(sorted(TOPO.sites), k=min(rng.randint(1, 4),
                                                 len(TOPO.sites)))
    pool = [h for s in sites for h in TOPO.hosts_in_site(s)]
    return [rng.choice(pool) for _ in range(p)]


def model_pair(mode, **overrides):
    """(vector, reference) models sharing every other parameter."""
    base = dataclasses.replace(DEFAULT_COST_PARAMS,
                               wan_contention=mode, **overrides)
    vec = CollectiveCostModel(
        TOPO, dataclasses.replace(base, kernel="vector"))
    ref = CollectiveCostModel(
        TOPO, dataclasses.replace(base, kernel="reference"))
    return vec, ref


def assert_all_collectives_equal(vec, ref, lay_v, lay_r, rng):
    nbytes = rng.choice(SIZES)
    root = rng.randrange(lay_v.p)
    checks = {
        "barrier": (vec.barrier_time(lay_v),
                    ref.barrier_time(lay_r)),
        "bcast": (vec.bcast_time(lay_v, nbytes, root=root),
                  ref.bcast_time(lay_r, nbytes, root=root)),
        "reduce": (vec.reduce_time(lay_v, nbytes),
                   ref.reduce_time(lay_r, nbytes)),
        "allreduce": (vec.allreduce_time(lay_v, nbytes),
                      ref.allreduce_time(lay_r, nbytes)),
        "gather": (vec.gather_time(lay_v, nbytes, root=root),
                   ref.gather_time(lay_r, nbytes, root=root)),
        "ring": (vec.ring_exchange_time(lay_v, nbytes),
                 ref.ring_exchange_time(lay_r, nbytes)),
        "alltoallv": (vec.alltoallv_time(lay_v, nbytes),
                      ref.alltoallv_time(lay_r, nbytes)),
        "wire": (vec.alltoallv_transfer_time(lay_v, nbytes),
                 ref.alltoallv_transfer_time(lay_r, nbytes)),
    }
    for name, (got, want) in checks.items():
        assert got == want, (
            f"{name}: vector {got!r} != reference {want!r} "
            f"(p={lay_v.p}, nbytes={nbytes}, "
            f"mode={vec.params.wan_contention})")


class TestSeededGrid:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 16, 77])
    def test_randomized_plans_bit_exact(self, mode, seed, p):
        rng = random.Random(1000 * seed + p)
        vec, ref = model_pair(mode)
        hosts = random_plan(rng, p)
        assert_all_collectives_equal(vec, ref, vec.layout(hosts),
                                     ref.layout(hosts), rng)

    @pytest.mark.parametrize("mode", MODES)
    def test_paper_scale_600(self, mode):
        rng = random.Random(600)
        vec, ref = model_pair(mode)
        hosts = random_plan(rng, 600)
        assert_all_collectives_equal(vec, ref, vec.layout(hosts),
                                     ref.layout(hosts), rng)

    @pytest.mark.parametrize("mode", MODES)
    def test_replication_census_bit_exact(self, mode):
        """apply_copy_counts widens wan_flows on both paths alike."""
        rng = random.Random(42)
        vec, ref = model_pair(mode)
        hosts = random_plan(rng, 48)
        census = {h.name: rng.randint(1, 3) for h in ALL_HOSTS[::5]}
        census.update({h.name: 2 for h in hosts})
        lay_v, lay_r = vec.layout(hosts), ref.layout(hosts)
        for lay in (lay_v, lay_r):
            lay.apply_copy_counts(census)
        assert_all_collectives_equal(vec, ref, lay_v, lay_r, rng)

    def test_colocated_override_bit_exact(self):
        """The Application.run_time-style colocated rebinding."""
        import numpy as np

        rng = random.Random(7)
        vec, ref = model_pair("plan")
        hosts = random_plan(rng, 32)
        lay_v, lay_r = vec.layout(hosts), ref.layout(hosts)
        override = np.array([rng.randint(1, 4) for _ in hosts])
        lay_v.colocated = override.copy()
        lay_r.colocated = override.copy()
        assert_all_collectives_equal(vec, ref, lay_v, lay_r, rng)

    @pytest.mark.parametrize("overrides", [
        {"nic_share": False},
        {"msg_fixed_s": 0.0, "msg_fixed_small_s": 0.0,
         "ser_per_byte_s": 0.0, "wan_extra_s": 0.0},
    ])
    def test_param_variants_bit_exact(self, overrides):
        rng = random.Random(11)
        vec, ref = model_pair("plan", **overrides)
        hosts = random_plan(rng, 40)
        assert_all_collectives_equal(vec, ref, vec.layout(hosts),
                                     ref.layout(hosts), rng)


class TestRoutedTopologies:
    """The same bit-exact contract on routed multi-hop topologies.

    Generated families exercise the per-link share matrix
    (``GroupLayout._routed_plan_shares``): both kernels must read the
    identical memoized matrix, so agreement is by construction — these
    tests catch any routed-branch divergence between the paths.
    """

    def _routed_models(self, mode, family):
        from repro.net.families import (fat_sites_topology,
                                        scale_free_topology,
                                        small_world_topology)

        topo = {
            "scale_free": lambda: scale_free_topology(sites=8,
                                                      topo_seed=3),
            "small_world": lambda: small_world_topology(sites=8,
                                                        topo_seed=3),
            "fat_sites": lambda: fat_sites_topology(sites=10,
                                                    router_groups=4,
                                                    topo_seed=3),
        }[family]()
        base = dataclasses.replace(DEFAULT_COST_PARAMS,
                                   wan_contention=mode)
        vec = CollectiveCostModel(
            topo, dataclasses.replace(base, kernel="vector"))
        ref = CollectiveCostModel(
            topo, dataclasses.replace(base, kernel="reference"))
        return topo, vec, ref

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("family",
                             ["scale_free", "small_world", "fat_sites"])
    def test_randomized_routed_plans_bit_exact(self, mode, family):
        topo, vec, ref = self._routed_models(mode, family)
        all_hosts = topo.all_hosts()
        for seed in (1, 2):
            rng = random.Random(seed)
            hosts = [rng.choice(all_hosts)
                     for _ in range(rng.randint(2, 40))]
            assert_all_collectives_equal(vec, ref, vec.layout(hosts),
                                         ref.layout(hosts), rng)

    def test_routed_replication_census_bit_exact(self):
        topo, vec, ref = self._routed_models("plan", "scale_free")
        rng = random.Random(5)
        all_hosts = topo.all_hosts()
        hosts = [rng.choice(all_hosts) for _ in range(24)]
        census = {h.name: rng.randint(1, 3) for h in all_hosts[::3]}
        census.update({h.name: 2 for h in hosts})
        lay_v, lay_r = vec.layout(hosts), ref.layout(hosts)
        for lay in (lay_v, lay_r):
            lay.apply_copy_counts(census)
        assert_all_collectives_equal(vec, ref, lay_v, lay_r, rng)

    def test_routed_share_agrees_with_plan_contention(self):
        """Cross-layer: the cost model's per-pair WAN share equals the
        contention layer's answer for the same copy multiset."""
        topo, vec, _ = self._routed_models("plan", "fat_sites")
        rng = random.Random(9)
        all_hosts = topo.all_hosts()
        hosts = [rng.choice(all_hosts) for _ in range(20)]
        layout = vec.layout(hosts)
        contention = ContentionModel(topo).plan(hosts)
        checked = 0
        for i, a in enumerate(layout.hosts):
            for b in layout.hosts[i + 1:]:
                if a.site == b.site:
                    continue
                share = layout.wan_share_bps(
                    layout.site_of[a.site], layout.site_of[b.site],
                    vec.params)
                # pair_bw additionally clamps to the NIC-limited path.
                assert (min(topo.bandwidth_bps(a, b), share)
                        == contention.pair_bw_bps(a, b))
                checked += 1
        assert checked > 0


class TestPairwiseMatrix:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("nbytes", SIZES)
    def test_matrix_equals_scalar_p2p(self, mode, nbytes):
        rng = random.Random(5)
        vec, ref = model_pair(mode)
        lay = vec.layout(random_plan(rng, 24))
        times = vec.pairwise_times(lay, nbytes)
        for i in range(lay.p):
            for j in range(lay.p):
                assert times[i, j] == ref.p2p_time(lay, i, j, nbytes), (
                    f"[{i},{j}] mode={mode} nbytes={nbytes}")

    def test_matrix_memoized_and_state_keyed(self):
        vec, _ = model_pair("plan")
        lay = vec.layout(random_plan(random.Random(3), 16))
        first = vec.pairwise_times(lay, 8192)
        again = vec.pairwise_times(lay, 8192)
        assert again is first
        assert vec.stats.pairwise_hits == 1
        # Mutating the contention state must miss the memo and change
        # the WAN-bound entries.
        lay.apply_copy_counts({h.name: 4 for h in ALL_HOSTS[:200]})
        fresh = vec.pairwise_times(lay, 8192)
        assert fresh is not first
        assert vec.stats.pairwise_builds == 2

    def test_matrix_is_read_only(self):
        import numpy as np

        vec, _ = model_pair("plan")
        lay = vec.layout(random_plan(random.Random(4), 8))
        times = vec.pairwise_times(lay, 100)
        with pytest.raises(ValueError):
            times[0, 0] = 1.0
        assert isinstance(times, np.ndarray)


class TestLayoutMemo:
    def test_clone_isolation_under_mutation(self):
        """A cached layout template must never leak caller mutation."""
        import numpy as np

        vec, _ = model_pair("plan")
        hosts = random_plan(random.Random(9), 20)
        a = vec.layout(hosts)
        b = vec.layout(hosts)
        assert vec.stats.layout_cache_hits >= 1
        b_colocated = b.colocated.copy()
        b_flows = b.wan_flows.copy()
        before = vec.alltoallv_time(b, 8192)
        a.colocated = a.colocated * 4
        a.apply_copy_counts({h.name: 8 for h in hosts})
        assert np.array_equal(b.colocated, b_colocated)
        assert np.array_equal(b.wan_flows, b_flows)
        assert vec.alltoallv_time(vec.layout(hosts), 8192) == before

    def test_rank_order_distinguishes_keys(self):
        """Layouts are keyed by *ordered* host tuples: a permuted plan
        is a different layout (rank order matters to collectives)."""
        vec, _ = model_pair("plan")
        nancy = TOPO.hosts_in_site("nancy")
        lyon = TOPO.hosts_in_site("lyon")
        plan = nancy[:4] + lyon[:4]
        vec.layout(plan)
        builds = vec.stats.layout_builds
        vec.layout(list(reversed(plan)))
        assert vec.stats.layout_builds == builds + 1


class TestWorkCounters:
    def test_vector_path_makes_no_scalar_p2p_calls(self):
        rng = random.Random(21)
        vec, ref = model_pair("plan")
        hosts = random_plan(rng, 64)
        lay_v, lay_r = vec.layout(hosts), ref.layout(hosts)
        vec.stats.reset()
        ref.stats.reset()
        for model, lay in ((vec, lay_v), (ref, lay_r)):
            model.barrier_time(lay)
            model.bcast_time(lay, 4096)
            model.allreduce_time(lay, 4096)
            model.gather_time(lay, 1000)
            model.ring_exchange_time(lay, 500)
            model.alltoallv_time(lay, 8192)
        assert vec.stats.p2p_calls == 0
        # Every edge the reference prices scalar-ly, the vector path
        # prices via a matrix reduction — the counts must agree.
        assert vec.stats.p2p_edges_vectorized == ref.stats.p2p_calls
        assert ref.stats.p2p_edges_vectorized == 0
        # The alltoallv rank loop dedupes to (site, colocated) combos.
        assert 0 < vec.stats.alltoallv_combo_evals < \
            ref.stats.alltoallv_rank_evals


class TestIncrementalPlanScore:
    def test_matches_batch_under_add_remove(self):
        rng = random.Random(7)
        model = ContentionModel(TOPO)
        score = IncrementalPlanScore(TOPO)
        bag = []
        for _step in range(120):
            if bag and rng.random() < 0.4:
                host = bag.pop(rng.randrange(len(bag)))
                score.remove(host)
            else:
                host = rng.choice(ALL_HOSTS)
                bag.append(host)
                score.add(host)
            assert score.snapshot() == model.plan(bag)
            assert score.size == len(bag)
            if len(bag) >= 2:
                a, b = rng.sample(bag, 2)
                assert score.pair_bw_bps(a, b) == \
                    model.plan(bag).pair_bw_bps(a, b)
                assert score.max_crossing_pairs() == \
                    model.plan(bag).max_crossing_pairs()

    def test_multi_copy_add_remove(self):
        nancy = TOPO.hosts_in_site("nancy")
        lyon = TOPO.hosts_in_site("lyon")
        score = IncrementalPlanScore(TOPO)
        score.add(nancy[0], 64)
        score.add(lyon[0], 64)
        model = ContentionModel(TOPO)
        batch = model.plan([nancy[0]] * 64 + [lyon[0]] * 64)
        assert score.snapshot() == batch
        score.remove(lyon[0], 64)
        assert score.counts() == {"nancy": 64}

    def test_remove_below_zero_raises(self):
        score = IncrementalPlanScore(TOPO)
        with pytest.raises(ValueError):
            score.remove(ALL_HOSTS[0])

    def test_seeded_constructor(self):
        rng = random.Random(13)
        bag = [rng.choice(ALL_HOSTS) for _ in range(30)]
        score = IncrementalPlanScore(TOPO, bag)
        assert score.snapshot() == ContentionModel(TOPO).plan(bag)


class TestStrategyPlanScore:
    """The greedy loops maintain the census they end with."""

    def _slist(self, hosts):
        from repro.alloc.base import ReservedHost

        return [ReservedHost(host=h, p_limit=h.cores, latency_ms=i * 0.1)
                for i, h in enumerate(hosts)]

    def _check_census(self, strategy, slist, u):
        plan = []
        for idx, count in enumerate(u):
            plan.extend([slist[idx].host] * count)
        assert strategy.plan_score is not None
        assert strategy.plan_score.snapshot() == \
            ContentionModel(TOPO).plan(plan)

    def test_bandwidth_spread_census(self):
        from repro.alloc.bandwidth_spread import BandwidthSpreadStrategy

        hosts = TOPO.hosts_in_site("nancy")[:6] + \
            TOPO.hosts_in_site("lyon")[:6] + TOPO.hosts_in_site("rennes")[:6]
        slist = self._slist(hosts)
        caps = [h.cores for h in hosts]
        strategy = BandwidthSpreadStrategy(topology=TOPO)
        u = strategy.distribute_over(slist, caps, n=20, r=1)
        self._check_census(strategy, slist, u)

    def test_bandwidth_spread_plan_scored_census(self):
        from repro.alloc.bandwidth_spread import BandwidthSpreadStrategy

        hosts = TOPO.hosts_in_site("nancy")[:5] + \
            TOPO.hosts_in_site("lyon")[:5] + \
            TOPO.hosts_in_site("bordeaux")[:5]
        slist = self._slist(hosts)
        caps = [h.cores for h in hosts]
        strategy = BandwidthSpreadStrategy(topology=TOPO, plan_scored=True)
        u = strategy.distribute_over(slist, caps, n=16, r=1)
        assert sum(u) == 16
        self._check_census(strategy, slist, u)

    def test_diameter_concentrate_census(self):
        from repro.alloc.diameter_concentrate import \
            DiameterConcentrateStrategy

        hosts = TOPO.hosts_in_site("nancy")[:8] + \
            TOPO.hosts_in_site("lyon")[:8]
        slist = self._slist(hosts)
        caps = [h.cores for h in hosts]
        strategy = DiameterConcentrateStrategy(topology=TOPO)
        u = strategy.distribute_over(slist, caps, n=24, r=1)
        self._check_census(strategy, slist, u)

    def test_topo_block_census(self):
        from repro.alloc.topo_block import TopoBlockStrategy

        hosts = TOPO.hosts_in_site("nancy")[:8] + \
            TOPO.hosts_in_site("lyon")[:8]
        slist = self._slist(hosts)
        caps = [h.cores for h in hosts]
        strategy = TopoBlockStrategy(topology=TOPO)
        u = strategy.distribute_over(slist, caps, n=24, r=1)
        self._check_census(strategy, slist, u)
