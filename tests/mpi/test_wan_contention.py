"""WAN backbone contention in the cost model, pinned by fig4.

Covers the ``CostParams.wan_contention`` modes and the ISSUE's
calibration contract: the plan-dependent model reproduces the paper's
IS crossover (2x64 strictly slower than 1x128, EP indistinguishable)
and the deprecated fixed-16 divisor is *asserted to fail* it — the
regression guard against reverting to the constant.
"""

import dataclasses

import pytest

from repro.cluster import DEFAULT_COST_PARAMS
from repro.experiments.applatency import fig4_crossover
from repro.grid5000.builder import build_topology
from repro.mpi.costmodel import CollectiveCostModel, CostParams

TOPO = build_topology()


def layouts_2x64_vs_1x128(model):
    """The calibration layouts: 4 copies per host (P = cores)."""
    nancy = TOPO.hosts_in_site("nancy")
    lyon = TOPO.hosts_in_site("lyon")
    one = [h for h in nancy[:32] for _ in range(4)]
    two = ([h for h in nancy[:16] for _ in range(4)]
           + [h for h in lyon[:16] for _ in range(4)])
    return model.layout(one), model.layout(two)


def model_for(mode):
    return CollectiveCostModel(
        TOPO, dataclasses.replace(DEFAULT_COST_PARAMS, wan_contention=mode))


class TestModes:
    def test_default_mode_is_plan(self):
        assert CostParams().wan_contention == "plan"
        assert DEFAULT_COST_PARAMS.wan_contention == "plan"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CostParams(wan_contention="psychic")

    def test_wan_share_follows_site_counts(self):
        model = model_for("plan")
        _, two = layouts_2x64_vs_1x128(model)
        si = two.site_of["nancy"]
        sj = two.site_of["lyon"]
        assert two.wan_flows[si, sj] == 64
        assert two.wan_share_bps(si, sj, model.params) == pytest.approx(
            10.0e9 / 64)
        # LAN never pools a backbone.
        assert two.wan_share_bps(si, si, model.params) == float("inf")

    def test_fixed_mode_uses_constant(self):
        model = model_for("fixed")
        _, two = layouts_2x64_vs_1x128(model)
        si, sj = two.site_of["nancy"], two.site_of["lyon"]
        assert two.wan_share_bps(si, sj, model.params) == pytest.approx(
            10.0e9 / 16)

    def test_none_mode_never_pools(self):
        model = model_for("none")
        _, two = layouts_2x64_vs_1x128(model)
        si, sj = two.site_of["nancy"], two.site_of["lyon"]
        assert two.wan_share_bps(si, sj, model.params) == float("inf")

    def test_p2p_sees_backbone_share(self):
        """A cross-site byte stream is slower under plan contention
        than under the unpooled legacy model."""
        plan = model_for("plan")
        none = model_for("none")
        _, two_p = layouts_2x64_vs_1x128(plan)
        _, two_n = layouts_2x64_vs_1x128(none)
        src = 0              # a nancy rank
        dst = two_p.p - 1    # a lyon rank
        nbytes = 1_000_000
        assert (plan.p2p_time(two_p, src, dst, nbytes)
                > none.p2p_time(two_n, src, dst, nbytes))

    def test_transfer_time_is_bandwidth_only(self):
        """The wire time excludes latency/fixed costs: zero bytes cost
        zero seconds, and single-rank groups never touch the wire."""
        model = model_for("plan")
        one, _ = layouts_2x64_vs_1x128(model)
        assert model.alltoallv_transfer_time(one, 0) == 0.0
        solo = model.layout([TOPO.hosts_in_site("nancy")[0]])
        assert model.alltoallv_transfer_time(solo, 8192) == 0.0

    def test_copy_census_widens_the_flow_divisor(self):
        """A replicated plan runs its replicas' collectives
        concurrently: the full copy census must widen the backbone
        divisor just as ``colocated`` widens the NIC divisor."""
        model = model_for("plan")
        nancy = TOPO.hosts_in_site("nancy")
        lyon = TOPO.hosts_in_site("lyon")
        slice_hosts = nancy[:8] + lyon[:8]
        layout = model.layout(slice_hosts)
        si, sj = layout.site_of["nancy"], layout.site_of["lyon"]
        assert layout.wan_flows[si, sj] == 8
        before = model.alltoallv_transfer_time(layout, 8192)
        # Replica 1 occupies eight further hosts per site.
        census = {h.name: 1 for h in nancy[:16] + lyon[:16]}
        layout.apply_copy_counts(census)
        assert layout.wan_flows[si, sj] == 16
        assert model.alltoallv_transfer_time(layout, 8192) > before

    def test_copy_census_never_shrinks_below_the_layout(self):
        """A stale or partial census cannot undercount the layout's
        own ranks, and unknown hosts/sites are ignored."""
        model = model_for("plan")
        nancy = TOPO.hosts_in_site("nancy")
        lyon = TOPO.hosts_in_site("lyon")
        layout = model.layout(nancy[:4] + lyon[:4])
        si, sj = layout.site_of["nancy"], layout.site_of["lyon"]
        layout.apply_copy_counts({"no-such-host.mars": 9,
                                  TOPO.hosts_in_site("rennes")[0].name: 9})
        assert layout.wan_flows[si, sj] == 4

    def test_replicated_run_time_pays_more_backbone_contention(self):
        """End to end through Application.run_time: the same replica
        slice costs more when the plan carries a second replica's
        copies on further cross-site hosts."""
        from repro.apps.base import AppEnv
        from repro.apps.is_bench import ISBenchmark

        env = AppEnv(topology=TOPO, cost_params=DEFAULT_COST_PARAMS)
        nancy = TOPO.hosts_in_site("nancy")
        lyon = TOPO.hosts_in_site("lyon")
        slice_hosts = nancy[:8] + lyon[:8]
        solo = {h.name: 1 for h in slice_hosts}
        with_replica = dict(solo)
        with_replica.update({h.name: 1 for h in nancy[8:16] + lyon[8:16]})
        is_b = ISBenchmark("B")
        assert (is_b.run_time(slice_hosts, 16, env, colocated=with_replica)
                > is_b.run_time(slice_hosts, 16, env, colocated=solo))

    def test_plan_mode_relaxes_the_legacy_overcount(self):
        """The legacy model divided the NIC-clamped 1 Gb/s path by the
        flow count — as if every backbone were 1 Gb/s.  On the 10 Gb/s
        nancy-lyon link the pooled share is 10x wider."""
        plan = model_for("plan")
        none = model_for("none")
        _, two_p = layouts_2x64_vs_1x128(plan)
        _, two_n = layouts_2x64_vs_1x128(none)
        assert (plan.alltoallv_transfer_time(two_p, 8192)
                < none.alltoallv_transfer_time(two_n, 8192))


class TestFig4Crossover:
    """Tier-1 calibration pin (ISSUE acceptance criterion)."""

    @pytest.fixture(scope="class")
    def cal(self):
        return fig4_crossover()

    def test_plan_reproduces_is_crossover(self, cal):
        """Paper fig4: co-allocating IS over two sites is strictly
        slower than staying inside one — on the wire (the contended
        component) and end to end."""
        rows = cal["modes"]["plan"]
        assert rows["2x64"]["wire"] > 1.2 * rows["1x128"]["wire"]
        assert rows["2x64"]["total"] > 1.5 * rows["1x128"]["total"]

    def test_plan_leaves_ep_indistinguishable(self, cal):
        """Compute-bound EP must not care where its copies land."""
        rows = cal["modes"]["plan"]
        ratio = rows["2x64"]["ep_total"] / rows["1x128"]["ep_total"]
        assert 0.9 < ratio < 1.1

    def test_fixed_sixteen_fails_the_crossover(self, cal):
        """The regression guard: under the deprecated constant the
        wire ordering collapses — backbone/16 = 625 Mb/s exceeds the
        250 Mb/s NIC share, so the fixed model claims 64 crossing
        flows cost nothing over staying home.  Reverting the cost
        model to the constant flips `test_plan_reproduces_is_crossover`
        red; this pin documents *why* in the same breath."""
        rows = cal["modes"]["fixed"]
        assert rows["2x64"]["wire"] <= 1.05 * rows["1x128"]["wire"]
        # And strictly less contended than the plan-dependent truth.
        assert (rows["2x64"]["wire"]
                < cal["modes"]["plan"]["2x64"]["wire"])

    def test_crossing_count_is_sixty_four(self):
        """The 2x64 plan's nancy-lyon backbone carries 64 concurrent
        crossing pairs — the divisor the fixed model got wrong 4x."""
        from repro.net.contention import ContentionModel

        nancy = TOPO.hosts_in_site("nancy")
        lyon = TOPO.hosts_in_site("lyon")
        plan = ([h for h in nancy[:16] for _ in range(4)]
                + [h for h in lyon[:16] for _ in range(4)])
        crossing = ContentionModel(TOPO).crossing_pairs(plan)
        assert crossing[("lyon", "nancy")] == 64
