"""Sequence-numbered gossip: digest merge, envelope dedup, supernode.

The convergence property under test: per-origin sequence numbers with
last-writer-wins merging make any delivery order (duplicates,
reordering, relays) converge every view to each origin's newest state
— and the supernode's ALIVE stream now obeys the same rule.
"""

from repro.cluster import build_small_cluster
from repro.overlay.gossip import GossipEnvelope, GossipView, PeerDigest
from repro.overlay.supernode import PeerRecord, Supernode


class TestGossipView:
    def test_digest_merge_is_last_writer_wins(self):
        view = GossipView(owner="v")
        assert view.apply_digest(PeerDigest(name="h", seq=1, load=0))
        assert view.apply_digest(PeerDigest(name="h", seq=3, load=5))
        # Reordered delivery of the middle update must not regress.
        assert not view.apply_digest(PeerDigest(name="h", seq=2, load=2))
        assert view.get("h").load == 5
        assert view.applied == 2 and view.stale == 1

    def test_envelope_dedup_by_relay_seq(self):
        view = GossipView(owner="v")
        env = GossipEnvelope(origin="relay", seq=1, entries=(
            PeerDigest(name="a", seq=1), PeerDigest(name="b", seq=1)))
        assert view.apply(env) == 2
        assert view.apply(env) == 0  # retransmission dropped wholesale
        assert view.stale == 2

    def test_any_delivery_order_converges(self):
        updates = [PeerDigest(name="h", seq=s, load=s) for s in (1, 2, 3)]
        forward, shuffled = GossipView("f"), GossipView("s")
        for d in updates:
            forward.apply_digest(d)
        for d in (updates[2], updates[0], updates[1]):
            shuffled.apply_digest(d)
        assert forward.peers == shuffled.peers

    def test_digest_snapshot_is_name_sorted(self):
        view = GossipView(owner="v")
        view.apply_digest(PeerDigest(name="zz", seq=1))
        view.apply_digest(PeerDigest(name="aa", seq=1))
        assert [d.name for d in view.digest()] == ["aa", "zz"]

    def test_online_filter(self):
        view = GossipView(owner="v")
        view.apply_digest(PeerDigest(name="up", seq=1, status="online"))
        view.apply_digest(PeerDigest(name="down", seq=1, status="suspect"))
        assert view.online() == ["up"]


class TestSupernodeSequenceNumbers:
    def test_stale_update_does_not_roll_last_seen_back(self):
        sn = Supernode.__new__(Supernode)  # _touch is network-free
        sn.records, sn.stale_updates = {}, 0
        assert sn._touch("h", now=10.0, seq=2)
        assert not sn._touch("h", now=20.0, seq=1)  # reordered ALIVE
        assert sn.records["h"].last_seen == 10.0
        assert sn.stale_updates == 1
        assert sn._touch("h", now=30.0, seq=3)
        assert sn.records["h"].last_seen == 30.0

    def test_seqless_updates_keep_legacy_behaviour(self):
        sn = Supernode.__new__(Supernode)
        sn.records, sn.stale_updates = {}, 0
        assert sn._touch("h", now=1.0)
        assert sn._touch("h", now=2.0)  # always applied without a seq
        assert sn.records["h"].last_seen == 2.0
        assert sn.records["h"].seq == 0

    def test_peer_record_defaults(self):
        rec = PeerRecord("h", last_seen=0.0)
        assert rec.seq == 0

    def test_alive_stream_carries_rising_seqs_end_to_end(self):
        """Booted cluster: the supernode's records reflect the peers'
        stamped REGISTER/ALIVE sequence numbers."""
        cluster = build_small_cluster(seed=2)
        cluster.boot()
        cluster.sim.run(until=130.0)  # past two alive periods
        records = cluster.supernode.records
        assert records  # everyone registered
        assert all(rec.seq >= 1 for rec in records.values())
        # At least one peer has heartbeat since registering.
        assert any(rec.seq > 1 for rec in records.values())
        assert cluster.supernode.stale_updates == 0
