"""The §4.1 periodic ping loop and EWMA cache folding."""

import pytest

from repro.net.latency import LatencyModel
from repro.net.transport import Network
from repro.overlay.peer import PeerDaemon
from repro.overlay.supernode import Supernode
from repro.sim import Simulator
from tests.conftest import make_small_topology


def build(ewma_alpha=None, sigma=0.5):
    sim = Simulator(seed=8)
    topo = make_small_topology()
    latency = LatencyModel(topo, sim.rng.stream("net.latency"),
                           noise_sigma_ms=sigma)
    net = Network(sim, topo, latency=latency)
    for host in topo.all_hosts():
        net.register(host.name)
    sn = Supernode(net, "a1-1.alpha")
    sim.process(sn.service())
    daemons = []
    for name in ("b1-1.beta", "a1-2.alpha"):
        d = PeerDaemon(sim, net, topo, topo.host(name), "a1-1.alpha",
                       latency, ewma_alpha=ewma_alpha)
        sim.run_until_complete(sim.process(d.boot()))
        daemons.append(d)
    return sim, net, daemons


class TestPeriodicPing:
    def test_rounds_update_cache(self):
        sim, net, (d1, d2) = build()
        sim.process(d2.periodic_ping(period_s=10.0))
        sim.run(until=sim.now + 35.0)
        entry = d2.cache.entry("b1-1.beta")
        assert entry.n_samples >= 3
        assert entry.latency_ms == pytest.approx(10.0, abs=3.0)

    def test_stops_when_host_dies(self):
        sim, net, (d1, d2) = build()
        sim.process(d2.periodic_ping(period_s=10.0))
        sim.run(until=sim.now + 15.0)
        samples_before = d2.cache.entry("b1-1.beta").n_samples
        net.set_down(d2.host.name)
        sim.run(until=sim.now + 50.0)
        assert d2.cache.entry("b1-1.beta").n_samples == samples_before

    def test_invalid_period(self):
        sim, net, (d1, d2) = build()
        with pytest.raises(ValueError):
            sim.run_until_complete(sim.process(d2.periodic_ping(period_s=0)))

    def test_ewma_smoother_than_last_sample(self):
        """EWMA-folded estimates vary less across rounds than raw ones."""
        import numpy as np

        def variability(alpha):
            sim, net, (d1, d2) = build(ewma_alpha=alpha, sigma=2.0)
            sim.process(d2.periodic_ping(period_s=5.0))
            values = []
            for _ in range(30):
                sim.run(until=sim.now + 5.0)
                entry = d2.cache.entry("b1-1.beta")
                if entry.latency_ms is not None:
                    values.append(entry.latency_ms)
            return float(np.std(values[5:]))

        assert variability(alpha=0.2) < variability(alpha=None)

    def test_cache_fold_replaces_without_alpha(self):
        sim, net, (d1, d2) = build()
        d2.cache.fold_latency("b1-1.beta", 100.0, now=1.0)
        assert d2.cache.entry("b1-1.beta").latency_ms == 100.0
        d2.cache.fold_latency("b1-1.beta", 50.0, now=2.0)
        assert d2.cache.entry("b1-1.beta").latency_ms == 50.0

    def test_cache_fold_ewma(self):
        sim, net, (d1, d2) = build()
        d2.cache.fold_latency("b1-1.beta", 100.0, now=1.0, ewma_alpha=0.5)
        d2.cache.fold_latency("b1-1.beta", 50.0, now=2.0, ewma_alpha=0.5)
        assert d2.cache.entry("b1-1.beta").latency_ms == pytest.approx(75.0)


class TestMiddlewarePingPeriod:
    def test_cluster_with_periodic_ping_boots_and_allocates(self):
        from repro.cluster import P2PMPICluster
        from repro.middleware.config import MiddlewareConfig
        from repro.middleware.jobs import JobRequest, JobStatus

        cluster = P2PMPICluster(
            make_small_topology(), seed=11,
            config=MiddlewareConfig(noise_sigma_ms=0.05, ping_period_s=15.0),
            supernode_host="a1-1.alpha",
        ).boot()
        res = cluster.submit_and_run(JobRequest(n=6, strategy="spread"))
        assert res.status is JobStatus.SUCCESS
