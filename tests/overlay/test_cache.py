"""Peer cache bookkeeping."""

import pytest

from repro.net.latency import LatencyEstimate
from repro.overlay.cache import PeerCache
from tests.conftest import make_small_topology


@pytest.fixture
def topo():
    return make_small_topology()


@pytest.fixture
def cache(topo):
    return PeerCache(owner="a1-1.alpha")


def est(host, value):
    return LatencyEstimate(host=host, value_ms=value, n_samples=3)


class TestCache:
    def test_add_and_contains(self, topo, cache):
        host = topo.host("b1-1.beta")
        cache.add(host)
        assert host.name in cache
        assert len(cache) == 1

    def test_merge_counts_new_only(self, topo, cache):
        hosts = topo.all_hosts()[:5]
        assert cache.merge(hosts) == 5
        assert cache.merge(hosts) == 0

    def test_set_latency(self, topo, cache):
        host = topo.host("b1-1.beta")
        cache.add(host)
        cache.set_latency(host.name, est(host, 9.5), now=1.0)
        entry = cache.entry(host.name)
        assert entry.latency_ms == 9.5
        assert entry.measured
        assert entry.n_samples == 3

    def test_sorted_by_latency(self, topo, cache):
        names = ["b1-1.beta", "a1-2.alpha", "g1-1.gamma"]
        values = [10.0, 0.1, 20.0]
        for name, value in zip(names, values):
            host = topo.host(name)
            cache.add(host)
            cache.set_latency(name, est(host, value), now=0.0)
        ordered = [e.host.name for e in cache.sorted_by_latency()]
        assert ordered == ["a1-2.alpha", "b1-1.beta", "g1-1.gamma"]

    def test_unmeasured_excluded_from_sort(self, topo, cache):
        cache.add(topo.host("b1-1.beta"))
        assert cache.sorted_by_latency() == []
        assert len(cache.unmeasured()) == 1

    def test_tie_breaks_by_name(self, topo, cache):
        for name in ("b1-2.beta", "b1-1.beta"):
            host = topo.host(name)
            cache.add(host)
            cache.set_latency(name, est(host, 5.0), now=0.0)
        ordered = [e.host.name for e in cache.sorted_by_latency()]
        assert ordered == ["b1-1.beta", "b1-2.beta"]

    def test_mark_dead_hides_entry(self, topo, cache):
        host = topo.host("b1-1.beta")
        cache.add(host)
        cache.mark_dead(host.name)
        assert host.name not in cache
        assert len(cache) == 0

    def test_drop_dead_removes(self, topo, cache):
        host = topo.host("b1-1.beta")
        cache.add(host)
        cache.mark_dead(host.name)
        assert cache.drop_dead() == [host.name]

    def test_revive_keeps_measurement(self, topo, cache):
        host = topo.host("b1-1.beta")
        cache.add(host)
        cache.set_latency(host.name, est(host, 9.0), now=0.0)
        cache.mark_dead(host.name)
        cache.add(host)  # revive
        assert cache.entry(host.name).latency_ms == 9.0

    def test_mark_dead_unknown_is_noop(self, cache):
        cache.mark_dead("ghost.host")
