"""Migration-aware ledger accounting (§3.2 bookkeeping under mobility).

A rank that checkpoints on host A and completes on host B must be
counted exactly once: MIGRATED/REJOINED traffic can neither inflate
``copies_done`` nor leave the rank looking lost.
"""

from repro.alloc import ReservedHost, build_plan, get_strategy
from repro.middleware.jobs import JobRequest, JobResult, JobStatus, JobTimings
from repro.overlay.churn import SurvivalLedger
from tests.conftest import make_small_topology


def make_result(n=2, status=JobStatus.SUCCESS, completions=None,
                migrations=None, finished_at=40.0):
    topo = make_small_topology()
    slist = [ReservedHost(h, p_limit=h.cores) for h in topo.all_hosts()]
    plan = build_plan(get_strategy("spread"), slist, n=n, r=1)
    return JobResult(
        job_id="J1",
        request=JobRequest(n=n, r=1, strategy="spread"),
        status=status,
        plan=plan,
        timings=JobTimings(submitted_at=0.0, finished_at=finished_at),
        completions=completions or {},
        migrations=migrations or [],
    )


class TestMigrationAwareAccounting:
    def test_migrated_rank_counted_exactly_once(self):
        """The pin: a copy that moved and then completed contributes
        one done copy, zero lost ranks, one tallied migration."""
        ledger = SurvivalLedger()
        entry = ledger.record_job("a1-1.alpha", make_result(
            completions={
                (0, 0): {"event": "done", "migrations": 0},
                (1, 0): {"event": "done", "migrations": 1},
            },
            migrations=[{"rank": 1, "replica": 0, "host": "b1-1.beta",
                         "event": "migrated", "remaining_s": 12.0,
                         "at": 20.0}],
        ))
        assert entry.copies_done == 2
        assert entry.ranks_lost == 0
        assert entry.copies_lost == 0
        assert entry.copies_migrated == 1
        assert entry.copies_rejoined == 0

    def test_non_done_payload_never_counts_as_completion(self):
        ledger = SurvivalLedger()
        entry = ledger.record_job("a1-1.alpha", make_result(
            status=JobStatus.RANKS_LOST,
            completions={
                (0, 0): {"event": "done"},
                (1, 0): {"event": "migrated"},  # defensive: not a DONE
            },
        ))
        assert entry.copies_done == 1
        assert entry.ranks_lost == 1

    def test_legacy_payload_without_event_counts_as_done(self):
        """Pre-migration DONE payloads carry no ``event`` key."""
        ledger = SurvivalLedger()
        entry = ledger.record_job("a1-1.alpha", make_result(
            completions={(0, 0): {"hostname": "x"}, (1, 0): {}},
        ))
        assert entry.copies_done == 2
        assert entry.ranks_lost == 0

    def test_rejoins_tallied_separately(self):
        ledger = SurvivalLedger()
        entry = ledger.record_job("a1-1.alpha", make_result(
            completions={(0, 0): {"event": "done"},
                         (1, 0): {"event": "done"}},
            migrations=[
                {"rank": 0, "replica": 0, "event": "migrated"},
                {"rank": 1, "replica": 0, "event": "rejoined"},
                {"rank": 1, "replica": 0, "event": "rejoined"},
            ],
        ))
        assert entry.copies_migrated == 1
        assert entry.copies_rejoined == 2


class TestSummaryMetrics:
    def test_summary_carries_mobility_and_completion_keys(self):
        ledger = SurvivalLedger()
        ledger.record_job("a1-1.alpha", make_result(
            completions={(0, 0): {"event": "done"},
                         (1, 0): {"event": "done"}},
            migrations=[{"event": "migrated"}],
            finished_at=30.0))
        ledger.record_job("a1-1.alpha", make_result(
            completions={(0, 0): {"event": "done"},
                         (1, 0): {"event": "done"}},
            migrations=[{"event": "rejoined"}],
            finished_at=50.0))
        summary = ledger.summary()
        assert summary["migrations"] == 1
        assert summary["rejoins"] == 1
        assert summary["mean_completion_s"] == 40.0
        assert summary["availability"] == 1.0

    def test_mean_completion_excludes_failed_jobs(self):
        ledger = SurvivalLedger()
        ledger.record_job("a1-1.alpha", make_result(finished_at=20.0))
        ledger.record_job("a1-1.alpha", make_result(
            status=JobStatus.RANKS_LOST, finished_at=999.0))
        assert ledger.mean_completion_s() == 20.0

    def test_empty_ledger_mean_is_none(self):
        assert SurvivalLedger().mean_completion_s() is None
        assert SurvivalLedger().summary()["mean_completion_s"] is None
