"""Supernode registry protocol."""

import pytest

from repro.net.transport import Network
from repro.overlay.messages import SUPERNODE_PORT
from repro.overlay.supernode import Supernode
from repro.sim import Simulator
from tests.conftest import make_small_topology


@pytest.fixture
def env():
    sim = Simulator(seed=2)
    topo = make_small_topology()
    net = Network(sim, topo)
    for host in topo.all_hosts():
        net.register(host.name)
    sn = Supernode(net, "a1-1.alpha", stale_after_s=100.0)
    sim.process(sn.service())
    return sim, topo, net, sn


def rpc(sim, net, src, kind, reply_kind):
    def body():
        net.send(src, "a1-1.alpha", SUPERNODE_PORT, kind,
                 payload={"reply_port": "t"}, size_bytes=64)
        msg = yield net.receive(src, "t", reply_kind)
        return msg.payload

    return sim.run_until_complete(sim.process(body()))


class TestRegistration:
    def test_register_returns_peerlist_including_self(self, env):
        sim, topo, net, sn = env
        payload = rpc(sim, net, "b1-1.beta", "REGISTER", "REGISTER_ACK")
        assert payload["peers"] == ["b1-1.beta"]
        assert sn.registrations == 1

    def test_second_peer_sees_first(self, env):
        sim, topo, net, sn = env
        rpc(sim, net, "b1-1.beta", "REGISTER", "REGISTER_ACK")
        payload = rpc(sim, net, "g1-1.gamma", "REGISTER", "REGISTER_ACK")
        assert set(payload["peers"]) == {"b1-1.beta", "g1-1.gamma"}

    def test_get_peers(self, env):
        sim, topo, net, sn = env
        rpc(sim, net, "b1-1.beta", "REGISTER", "REGISTER_ACK")
        payload = rpc(sim, net, "b1-2.beta", "GET_PEERS", "PEERS")
        assert "b1-1.beta" in payload["peers"]

    def test_alive_updates_timestamp(self, env):
        sim, topo, net, sn = env
        rpc(sim, net, "b1-1.beta", "REGISTER", "REGISTER_ACK")
        t0 = sn.records["b1-1.beta"].last_seen

        def body():
            yield sim.timeout(5.0)
            net.send("b1-1.beta", "a1-1.alpha", SUPERNODE_PORT, "ALIVE",
                     payload={}, size_bytes=64)
            yield sim.timeout(1.0)

        sim.run_until_complete(sim.process(body()))
        assert sn.records["b1-1.beta"].last_seen > t0
        assert sn.alive_signals == 1


class TestStaleness:
    def test_stale_peer_pruned(self, env):
        sim, topo, net, sn = env
        rpc(sim, net, "b1-1.beta", "REGISTER", "REGISTER_ACK")

        def later():
            yield sim.timeout(200.0)  # beyond stale_after_s=100

        sim.run_until_complete(sim.process(later()))
        assert sn.peer_list(sim.now) == []

    def test_fresh_peer_kept(self, env):
        sim, topo, net, sn = env
        rpc(sim, net, "b1-1.beta", "REGISTER", "REGISTER_ACK")
        assert sn.peer_list(sim.now) == ["b1-1.beta"]

    def test_report_dead_drops(self, env):
        sim, topo, net, sn = env
        rpc(sim, net, "b1-1.beta", "REGISTER", "REGISTER_ACK")
        net.send("g1-1.gamma", "a1-1.alpha", SUPERNODE_PORT, "REPORT_DEAD",
                 payload={"peers": ["b1-1.beta"]}, size_bytes=64)
        sim.run()
        assert "b1-1.beta" not in sn.records

    def test_drop_unknown_is_noop(self, env):
        _sim, _topo, _net, sn = env
        sn.drop("never.registered")  # no raise
