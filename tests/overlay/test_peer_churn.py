"""PeerDaemon boot/refresh and churn injection."""

import numpy as np
import pytest

from repro.net.latency import LatencyModel
from repro.net.transport import Network
from repro.overlay.churn import ChurnInjector, FailureEvent
from repro.overlay.peer import PeerDaemon
from repro.overlay.supernode import Supernode
from repro.sim import Simulator
from tests.conftest import make_small_topology


@pytest.fixture
def env():
    sim = Simulator(seed=4)
    topo = make_small_topology()
    latency = LatencyModel(topo, sim.rng.stream("net.latency"),
                           noise_sigma_ms=0.0)
    net = Network(sim, topo, latency=latency)
    for host in topo.all_hosts():
        net.register(host.name)
    sn = Supernode(net, "a1-1.alpha")
    sim.process(sn.service())

    def daemon(name):
        return PeerDaemon(sim, net, topo, topo.host(name), "a1-1.alpha",
                          latency, alive_period_s=30.0)

    return sim, topo, net, sn, daemon


class TestPeerDaemon:
    def test_boot_registers_and_seeds_cache(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        assert d1.joined
        assert "b1-1.beta" in sn.records

        d2 = daemon("g1-1.gamma")
        sim.run_until_complete(sim.process(d2.boot()))
        assert "b1-1.beta" in d2.cache

    def test_boot_excludes_self_from_cache(self, env):
        sim, topo, net, sn, daemon = env
        d = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d.boot()))
        assert "b1-1.beta" not in d.cache

    def test_alive_loop_sends_heartbeats(self, env):
        sim, topo, net, sn, daemon = env
        d = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d.boot()))
        sim.run(until=sim.now + 95.0)
        assert sn.alive_signals >= 3

    def test_refresh_cache_picks_up_new_peers(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("g1-1.gamma")
        sim.run_until_complete(sim.process(d2.boot()))

        def refresh():
            added = yield from d1.refresh_cache()
            return added

        assert sim.run_until_complete(sim.process(refresh())) == 1
        assert "g1-1.gamma" in d1.cache

    def test_measure_latencies(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("a1-2.alpha")
        sim.run_until_complete(sim.process(d2.boot()))
        measured = d2.measure_latencies()
        assert measured == 1
        entry = d2.cache.entry("b1-1.beta")
        assert entry.latency_ms == pytest.approx(10.0, abs=0.2)

    def test_measure_only_unmeasured(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("a1-2.alpha")
        sim.run_until_complete(sim.process(d2.boot()))
        assert d2.measure_latencies() == 1
        assert d2.measure_latencies() == 0
        assert d2.measure_latencies(only_unmeasured=False) == 1

    def test_report_dead_updates_cache_and_supernode(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("g1-1.gamma")
        sim.run_until_complete(sim.process(d2.boot()))
        d2.report_dead(["b1-1.beta"])
        # Bounded run: the daemons' alive loops reschedule forever, so
        # a bare run() would never return.
        sim.run(until=sim.now + 1.0)
        assert "b1-1.beta" not in d2.cache
        assert "b1-1.beta" not in sn.records

    def test_message_level_probe(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("a1-2.alpha")
        sim.run_until_complete(sim.process(d2.boot()))

        def body():
            rtt = yield from d2.probe_latency(topo.host("b1-1.beta"))
            return rtt

        rtt = sim.run_until_complete(sim.process(body()))
        assert rtt == pytest.approx(10.0, abs=0.5)


class TestChurn:
    def test_explicit_schedule(self, env):
        sim, topo, net, sn, daemon = env
        changes = []
        injector = ChurnInjector(sim, net,
                                 on_change=lambda h, d: changes.append((h, d)))
        schedule = ChurnInjector.kill_at([(5.0, "b1-1.beta")])
        proc = injector.start(schedule)
        sim.run_until_complete(proc)
        assert net.is_down("b1-1.beta")
        assert changes == [("b1-1.beta", True)]
        assert sim.now == 5.0

    def test_poisson_schedule_deterministic(self):
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        hosts = [f"h{i}" for i in range(20)]
        s1 = ChurnInjector.poisson_schedule(hosts, 0.01, 100.0, rng1)
        s2 = ChurnInjector.poisson_schedule(hosts, 0.01, 100.0, rng2)
        assert s1 == s2

    def test_poisson_revival(self):
        rng = np.random.default_rng(9)
        events = ChurnInjector.poisson_schedule(
            ["h1", "h2", "h3"], rate_per_host_s=1.0, horizon_s=100.0,
            rng=rng, revive_after_s=1.0)
        crashes = [e for e in events if e.down]
        revivals = [e for e in events if not e.down]
        assert crashes and revivals
        for rev in revivals:
            crash = next(e for e in crashes if e.host_name == rev.host_name)
            assert rev.time == pytest.approx(crash.time + 1.0)

    def test_unsorted_schedule_rejected(self, env):
        sim, topo, net, sn, daemon = env
        injector = ChurnInjector(sim, net)
        bad = [FailureEvent(5.0, "b1-1.beta", True),
               FailureEvent(1.0, "b1-2.beta", True)]
        proc = injector.start(bad)
        with pytest.raises(ValueError):
            sim.run_until_complete(proc)
