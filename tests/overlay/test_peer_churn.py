"""PeerDaemon boot/refresh and churn injection."""

import numpy as np
import pytest

from repro.net.latency import LatencyModel
from repro.net.transport import Network
from repro.overlay.churn import ChurnInjector, FailureEvent
from repro.overlay.peer import PeerDaemon
from repro.overlay.supernode import Supernode
from repro.sim import Simulator
from tests.conftest import make_small_topology


@pytest.fixture
def env():
    sim = Simulator(seed=4)
    topo = make_small_topology()
    latency = LatencyModel(topo, sim.rng.stream("net.latency"),
                           noise_sigma_ms=0.0)
    net = Network(sim, topo, latency=latency)
    for host in topo.all_hosts():
        net.register(host.name)
    sn = Supernode(net, "a1-1.alpha")
    sim.process(sn.service())

    def daemon(name):
        return PeerDaemon(sim, net, topo, topo.host(name), "a1-1.alpha",
                          latency, alive_period_s=30.0)

    return sim, topo, net, sn, daemon


class TestPeerDaemon:
    def test_boot_registers_and_seeds_cache(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        assert d1.joined
        assert "b1-1.beta" in sn.records

        d2 = daemon("g1-1.gamma")
        sim.run_until_complete(sim.process(d2.boot()))
        assert "b1-1.beta" in d2.cache

    def test_boot_excludes_self_from_cache(self, env):
        sim, topo, net, sn, daemon = env
        d = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d.boot()))
        assert "b1-1.beta" not in d.cache

    def test_alive_loop_sends_heartbeats(self, env):
        sim, topo, net, sn, daemon = env
        d = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d.boot()))
        sim.run(until=sim.now + 95.0)
        assert sn.alive_signals >= 3

    def test_refresh_cache_picks_up_new_peers(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("g1-1.gamma")
        sim.run_until_complete(sim.process(d2.boot()))

        def refresh():
            added = yield from d1.refresh_cache()
            return added

        assert sim.run_until_complete(sim.process(refresh())) == 1
        assert "g1-1.gamma" in d1.cache

    def test_measure_latencies(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("a1-2.alpha")
        sim.run_until_complete(sim.process(d2.boot()))
        measured = d2.measure_latencies()
        assert measured == 1
        entry = d2.cache.entry("b1-1.beta")
        assert entry.latency_ms == pytest.approx(10.0, abs=0.2)

    def test_measure_only_unmeasured(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("a1-2.alpha")
        sim.run_until_complete(sim.process(d2.boot()))
        assert d2.measure_latencies() == 1
        assert d2.measure_latencies() == 0
        assert d2.measure_latencies(only_unmeasured=False) == 1

    def test_report_dead_updates_cache_and_supernode(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("g1-1.gamma")
        sim.run_until_complete(sim.process(d2.boot()))
        d2.report_dead(["b1-1.beta"])
        # Bounded run: the daemons' alive loops reschedule forever, so
        # a bare run() would never return.
        sim.run(until=sim.now + 1.0)
        assert "b1-1.beta" not in d2.cache
        assert "b1-1.beta" not in sn.records

    def test_message_level_probe(self, env):
        sim, topo, net, sn, daemon = env
        d1 = daemon("b1-1.beta")
        sim.run_until_complete(sim.process(d1.boot()))
        d2 = daemon("a1-2.alpha")
        sim.run_until_complete(sim.process(d2.boot()))

        def body():
            rtt = yield from d2.probe_latency(topo.host("b1-1.beta"))
            return rtt

        rtt = sim.run_until_complete(sim.process(body()))
        assert rtt == pytest.approx(10.0, abs=0.5)


class TestChurn:
    def test_explicit_schedule(self, env):
        sim, topo, net, sn, daemon = env
        changes = []
        injector = ChurnInjector(sim, net,
                                 on_change=lambda h, d: changes.append((h, d)))
        schedule = ChurnInjector.kill_at([(5.0, "b1-1.beta")])
        proc = injector.start(schedule)
        sim.run_until_complete(proc)
        assert net.is_down("b1-1.beta")
        assert changes == [("b1-1.beta", True)]
        assert sim.now == 5.0

    def test_first_failure_schedule_deterministic(self):
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        hosts = [f"h{i}" for i in range(20)]
        s1 = ChurnInjector.first_failure_schedule(hosts, 0.01, 100.0, rng1)
        s2 = ChurnInjector.first_failure_schedule(hosts, 0.01, 100.0, rng2)
        assert s1 == s2

    def test_first_failure_revival(self):
        rng = np.random.default_rng(9)
        events = ChurnInjector.first_failure_schedule(
            ["h1", "h2", "h3"], rate_per_host_s=1.0, horizon_s=100.0,
            rng=rng, revive_after_s=1.0)
        crashes = [e for e in events if e.down]
        revivals = [e for e in events if not e.down]
        assert crashes and revivals
        for rev in revivals:
            crash = next(e for e in crashes if e.host_name == rev.host_name)
            assert rev.time == pytest.approx(crash.time + 1.0)

    def test_unsorted_schedule_rejected(self, env):
        sim, topo, net, sn, daemon = env
        injector = ChurnInjector(sim, net)
        bad = [FailureEvent(5.0, "b1-1.beta", True),
               FailureEvent(1.0, "b1-2.beta", True)]
        proc = injector.start(bad)
        with pytest.raises(ValueError):
            sim.run_until_complete(proc)


class TestPoissonDeprecation:
    """Pins both behaviours of the renamed one-shot schedule.

    ``poisson_schedule`` never was a Poisson *process*: each host draws
    one exponential and fails at most once, so a "rate" sweep over it
    is secretly a sweep of P(fail before horizon).  The name is kept as
    a warning alias of ``first_failure_schedule``; the honest rate axis
    lives in ``sustained_schedule``.
    """

    def test_alias_warns_and_matches_new_name(self):
        hosts = [f"h{i}" for i in range(10)]
        with pytest.warns(DeprecationWarning, match="one failure per host"):
            old = ChurnInjector.poisson_schedule(
                hosts, 0.05, 60.0, np.random.default_rng(3))
        new = ChurnInjector.first_failure_schedule(
            hosts, 0.05, 60.0, np.random.default_rng(3))
        assert old == new

    def test_one_shot_caps_at_one_failure_per_host(self):
        # Even at an absurd rate, the one-shot mode never crashes a
        # host twice — the property that made the old name a lie.
        events = ChurnInjector.first_failure_schedule(
            ["a", "b"], rate_per_host_s=100.0, horizon_s=1000.0,
            rng=np.random.default_rng(0))
        crashes = [e.host_name for e in events if e.down]
        assert sorted(crashes) == ["a", "b"]

    def test_sustained_mode_fails_hosts_repeatedly(self):
        events = ChurnInjector.sustained_schedule(
            ["a", "b"], rate_per_host_s=0.2, horizon_s=1000.0,
            rng=np.random.default_rng(0), downtime_s=1.0)
        crashes = [e.host_name for e in events if e.down]
        assert crashes.count("a") > 1 and crashes.count("b") > 1


# -- property-based schedule tests (seeded grid) --------------------------
#
# A deterministic grid of seeds/parameters rather than Hypothesis: the
# CI toolchain is numpy+pytest only, and a fixed grid keeps failures
# trivially reproducible.  Each property below must hold for every
# schedule the injector can emit.

SEED_GRID = [(seed, rate, horizon, downtime)
             for seed in (0, 1, 7, 42, 1234)
             for rate, horizon in ((0.01, 50.0), (0.1, 200.0), (2.0, 10.0))
             for downtime in (None, 0.5, 25.0)]


def _hosts(k=12):
    return [f"h{i:02d}" for i in range(k)]


class TestScheduleProperties:
    @pytest.mark.parametrize("seed,rate,horizon,downtime", SEED_GRID)
    def test_sustained_sorted_bounded_deterministic(self, seed, rate,
                                                    horizon, downtime):
        rng = np.random.default_rng(seed)
        events = ChurnInjector.sustained_schedule(
            _hosts(), rate, horizon, rng, downtime_s=downtime)
        # Sorted by (time, host), strictly inside the horizon.
        assert events == sorted(events,
                                key=lambda e: (e.time, e.host_name))
        assert all(0.0 < e.time < horizon for e in events)
        # Bit-identical replay for the same seed.
        again = ChurnInjector.sustained_schedule(
            _hosts(), rate, horizon, np.random.default_rng(seed),
            downtime_s=downtime)
        assert events == again

    @pytest.mark.parametrize("seed,rate,horizon,downtime", SEED_GRID)
    def test_sustained_per_host_alternation(self, seed, rate, horizon,
                                            downtime):
        """Per host: crash, revive, crash, ... — a revive never precedes
        its crash and always lands exactly ``downtime`` after it."""
        rng = np.random.default_rng(seed)
        events = ChurnInjector.sustained_schedule(
            _hosts(), rate, horizon, rng, downtime_s=downtime)
        for host in _hosts():
            mine = [e for e in events if e.host_name == host]
            last_crash = None
            for i, event in enumerate(mine):
                assert event.down == (i % 2 == 0)  # alternation
                if event.down:
                    last_crash = event.time
                else:
                    assert last_crash is not None
                    assert event.time == pytest.approx(
                        last_crash + downtime)
            if downtime is None:
                assert len(mine) <= 1  # permanent death: one crash max

    @pytest.mark.parametrize("seed,rate,horizon,revive",
                             [(s, r, h, rv)
                              for s in (0, 3, 99)
                              for r, h in ((0.02, 80.0), (0.5, 40.0))
                              for rv in (None, 2.0)])
    def test_first_failure_sorted_bounded_one_shot(self, seed, rate,
                                                   horizon, revive):
        rng = np.random.default_rng(seed)
        events = ChurnInjector.first_failure_schedule(
            _hosts(), rate, horizon, rng, revive_after_s=revive)
        assert events == sorted(events,
                                key=lambda e: (e.time, e.host_name))
        assert all(0.0 < e.time < horizon for e in events)
        for host in _hosts():
            mine = [e for e in events if e.host_name == host]
            assert sum(1 for e in mine if e.down) <= 1
            revivals = [e for e in mine if not e.down]
            if revivals:
                crash = next(e for e in mine if e.down)
                assert revivals[0].time == pytest.approx(crash.time + revive)

    @pytest.mark.parametrize("seed", [0, 5, 17, 88])
    def test_kill_at_idempotent_under_resorting(self, seed):
        rng = np.random.default_rng(seed)
        pairs = [(float(t), f"h{int(h)}")
                 for t, h in zip(rng.uniform(0, 50, size=30),
                                 rng.integers(0, 6, size=30))]
        schedule = ChurnInjector.kill_at(pairs)
        shuffled = list(pairs)
        rng.shuffle(shuffled)
        assert ChurnInjector.kill_at(shuffled) == schedule
        # Re-feeding the emitted order changes nothing either.
        assert ChurnInjector.kill_at(
            [(e.time, e.host_name) for e in schedule]) == schedule

    def test_sustained_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ChurnInjector.sustained_schedule(_hosts(), 0.0, 10.0, rng)
        with pytest.raises(ValueError):
            ChurnInjector.sustained_schedule(_hosts(), 0.1, 0.0, rng)
        with pytest.raises(ValueError):
            ChurnInjector.sustained_schedule(_hosts(), 0.1, 10.0, rng,
                                             downtime_s=0.0)
