"""Micro-benchmarks of the simulator substrate itself.

These are engineering (not paper) numbers: they bound the cost of the
building blocks the experiments run on, and catch performance
regressions in the event loop, the strategies, the cost model and the
reservation protocol.
"""

import pytest

from repro.alloc import ReservedHost, build_plan, get_strategy
from repro.grid5000.builder import build_topology
from repro.middleware.jobs import JobRequest
from repro.mpi.costmodel import CollectiveCostModel, CostParams
from repro.sim import Simulator, Store


def test_bench_event_loop_throughput(benchmark):
    """Schedule+process cost of one million timeout events."""

    def run():
        sim = Simulator()

        def ticker(sim, count):
            for _ in range(count):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.process(ticker(sim, 10_000))
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events >= 100_000


def test_bench_store_throughput(benchmark):
    """Mailbox put/get churn (the transport hot path)."""

    def run():
        sim = Simulator()
        box = Store(sim)

        def producer(sim, box):
            for i in range(20_000):
                yield box.put(i)

        def consumer(sim, box):
            total = 0
            for _ in range(20_000):
                item = yield box.get()
                total += item
            return total

        sim.process(producer(sim, box))
        proc = sim.process(consumer(sim, box))
        return sim.run_until_complete(proc)

    total = benchmark(run)
    assert total == sum(range(20_000))


@pytest.mark.parametrize("strategy", ["spread", "concentrate", "block"])
def test_bench_strategy_at_grid_scale(benchmark, strategy):
    """Distribute 600 processes over 350 hosts (the Figure 2/3 inner
    loop)."""
    topology = build_topology()
    slist = [ReservedHost(h, p_limit=h.cores)
             for h in topology.all_hosts()]

    def run():
        return build_plan(get_strategy(strategy), slist, n=600, r=1)

    plan = benchmark(run)
    assert plan.total_processes == 600


def test_bench_costmodel_alltoallv_600(benchmark):
    """One IS-iteration alltoallv evaluation over 600 ranks."""
    topology = build_topology()
    hosts = (topology.all_hosts() * 2)[:600]
    model = CollectiveCostModel(topology, CostParams(msg_fixed_s=3.5e-3))
    layout = model.layout(hosts)

    time_s = benchmark(lambda: model.alltoallv_time(layout, 1000))
    assert time_s > 0


def test_bench_full_submission(cluster, benchmark):
    """End-to-end p2pmpirun latency on the 350-peer overlay."""

    result = benchmark.pedantic(
        lambda: cluster.submit_and_run(
            JobRequest(n=300, strategy="spread", tag="micro")),
        rounds=3, iterations=1)
    assert result.ok
