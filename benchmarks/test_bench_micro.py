"""Micro-benchmarks of the simulator substrate itself.

These are engineering (not paper) numbers: they bound the cost of the
building blocks the experiments run on, and catch performance
regressions in the event loop, the strategies, the cost model and the
reservation protocol.
"""

import pytest

from repro.alloc import ReservedHost, build_plan, get_strategy
from repro.grid5000.builder import build_topology
from repro.middleware.jobs import JobRequest
from repro.mpi.costmodel import CollectiveCostModel, CostParams
from repro.sim import Simulator, Store


def test_bench_event_loop_throughput(benchmark):
    """Schedule+process cost of one million timeout events."""

    def run():
        sim = Simulator()

        def ticker(sim, count):
            for _ in range(count):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.process(ticker(sim, 10_000))
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events >= 100_000


def test_bench_store_throughput(benchmark):
    """Mailbox put/get churn (the transport hot path)."""

    def run():
        sim = Simulator()
        box = Store(sim)

        def producer(sim, box):
            for i in range(20_000):
                yield box.put(i)

        def consumer(sim, box):
            total = 0
            for _ in range(20_000):
                item = yield box.get()
                total += item
            return total

        sim.process(producer(sim, box))
        proc = sim.process(consumer(sim, box))
        return sim.run_until_complete(proc)

    total = benchmark(run)
    assert total == sum(range(20_000))


@pytest.mark.parametrize("strategy", ["spread", "concentrate", "block"])
def test_bench_strategy_at_grid_scale(benchmark, strategy):
    """Distribute 600 processes over 350 hosts (the Figure 2/3 inner
    loop)."""
    topology = build_topology()
    slist = [ReservedHost(h, p_limit=h.cores)
             for h in topology.all_hosts()]

    def run():
        return build_plan(get_strategy(strategy), slist, n=600, r=1)

    plan = benchmark(run)
    assert plan.total_processes == 600


def test_bench_costmodel_alltoallv_600(benchmark):
    """One IS-iteration alltoallv evaluation over 600 ranks."""
    topology = build_topology()
    hosts = (topology.all_hosts() * 2)[:600]
    model = CollectiveCostModel(topology, CostParams(msg_fixed_s=3.5e-3))
    layout = model.layout(hosts)

    time_s = benchmark(lambda: model.alltoallv_time(layout, 1000))
    assert time_s > 0


def _grid_hosts(topology, p):
    """Deterministic multi-site host mixes at the paper's scales."""
    nancy = topology.hosts_in_site("nancy")
    lyon = topology.hosts_in_site("lyon")
    if p == 64:
        return [h for h in nancy[:32] for _ in range(2)]
    if p == 128:
        return [h for h in (nancy[:32] + lyon[:32]) for _ in range(2)]
    return (topology.all_hosts() * 2)[:p]


@pytest.mark.parametrize("p", [64, 128, 600])
@pytest.mark.parametrize("kernel", ["vector", "reference"])
def test_bench_collective_kernels(benchmark, p, kernel):
    """The full vectorised collective mix (barrier, binomial bcast,
    recursive-doubling allreduce, gather, ring halo) priced on one
    layout, both kernel paths, at p in {64, 128, 600}."""
    topology = build_topology()
    model = CollectiveCostModel(topology, CostParams(kernel=kernel))
    layout = model.layout(_grid_hosts(topology, p))

    def run():
        return (model.barrier_time(layout)
                + model.bcast_time(layout, 65536)
                + model.allreduce_time(layout, 4096)
                + model.gather_time(layout, 4096)
                + model.ring_exchange_time(layout, 8192))

    total = benchmark(run)
    assert total > 0
    if kernel == "vector":
        assert model.stats.p2p_calls == 0
        assert model.stats.p2p_edges_vectorized > 0


@pytest.mark.parametrize("p", [64, 128, 600])
def test_bench_layout_cache_hot_path(benchmark, p):
    """Repeated `layout()` for an already-seen plan shape (the greedy
    strategy inner loop) must be a memo hit plus a cheap clone."""
    topology = build_topology()
    model = CollectiveCostModel(topology, CostParams())
    hosts = _grid_hosts(topology, p)
    model.layout(hosts)  # prime the per-topology memo

    layout = benchmark(lambda: model.layout(hosts))
    assert layout.p == p
    assert model.stats.layout_cache_hits > 0
    assert model.stats.layout_builds == 1


def test_bench_full_submission(cluster, benchmark):
    """End-to-end p2pmpirun latency on the 350-peer overlay."""

    result = benchmark.pedantic(
        lambda: cluster.submit_and_run(
            JobRequest(n=300, strategy="spread", tag="micro")),
        rounds=3, iterations=1)
    assert result.ok
