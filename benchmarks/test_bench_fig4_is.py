"""Figure 4 right: NAS IS class B execution times, 32..128 processes.

Shape criteria (from §5.2):

* at 32 processes spread wins (all processes in the local cluster, no
  memory contention);
* from 64 processes spread pays WAN collectives and loses badly,
  degrading further at 128;
* concentrate stays "roughly constant";
* absolute times sit inside the paper's 0-40 s axis.
"""

from repro.apps import ISBenchmark
from repro.experiments.applications import (
    IS_PROCESS_COUNTS,
    run_application_experiment,
)
from repro.experiments.report import format_series_table

from benchmarks.conftest import emit


def test_bench_fig4_is(cluster, benchmark):
    series = benchmark.pedantic(
        lambda: run_application_experiment(
            ISBenchmark("B"), process_counts=IS_PROCESS_COUNTS,
            cluster=cluster),
        rounds=1, iterations=1,
    )

    emit("Figure 4 right: IS class B total time (s)",
         format_series_table(series, title="IS-B n"))

    spread, conc = series["spread"], series["concentrate"]
    assert spread.time_at(32) < conc.time_at(32)
    assert spread.time_at(64) > conc.time_at(64)
    assert spread.time_at(128) > 2.0 * conc.time_at(128)
    # spread strictly degrades once it leaves the cluster.
    assert spread.time_at(32) < spread.time_at(64) < spread.time_at(128)
    # concentrate roughly constant.
    assert conc.flatness() < 1.8
    for s in (spread, conc):
        assert max(s.times) < 40.0
