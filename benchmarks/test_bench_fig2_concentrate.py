"""Figure 2: *concentrate* — allocated hosts (left) and cores (right)
per site, for 100..600 demanded processes.

Shape criteria (from §5.1):

* up to 200 processes everything lands at nancy;
* nancy saturates at 240 cores / 60 hosts;
* the first overflow goes to lyon (5 hosts at n=250);
* lyon/rennes/bordeaux compete beyond 300; sophia stays unused.
"""

from repro.experiments.coallocation import (
    PAPER_DEMANDS,
    run_coallocation_experiment,
)
from repro.experiments.report import format_site_table

from benchmarks.conftest import emit


def test_bench_fig2_concentrate(cluster, benchmark):
    series = benchmark.pedantic(
        lambda: run_coallocation_experiment(
            demands=PAPER_DEMANDS, strategies=("concentrate",),
            cluster=cluster)["concentrate"],
        rounds=1, iterations=1,
    )

    emit("Figure 2 left: concentrate, allocated hosts per site",
         format_site_table(series, value="hosts"))
    emit("Figure 2 right: concentrate, allocated cores per site",
         format_site_table(series, value="cores"))

    # -- §5.1 shape assertions ------------------------------------------------
    assert series.only_site_until("nancy") >= 200
    for n in (300, 400, 500, 600):
        assert series.point(n).cores("nancy") == 240
        assert series.point(n).hosts("nancy") == 60
    pt250 = series.point(250)
    assert pt250.hosts("lyon") == 5 and pt250.cores("lyon") == 10
    assert series.point(600).cores("sophia") == 0
    # Demand always met exactly.
    for pt in series.points:
        assert sum(pt.cores_by_site.values()) == pt.n
    # Concentrate packs: fewer hosts than spread would use.
    assert series.point(100).total_hosts == 25
