"""Extension benches: co-allocation latency scaling and sustained
multi-user workload replay.

The paper demonstrates that co-allocation *works* at 600 processes;
these benches quantify how the reservation machinery scales and how the
overlay behaves under a sustained job stream — the operational view a
downstream deployer needs.
"""

import numpy as np

from repro.apps import HostnameApp
from repro.experiments.scaling import run_scaling_experiment
from repro.workloads import JobMix, WorkloadSpec, generate_stream, replay_stream

from benchmarks.conftest import emit


def test_bench_reservation_scaling(cluster, benchmark):
    series = benchmark.pedantic(
        lambda: run_scaling_experiment(
            demands=(50, 100, 200, 400, 600), strategy="spread",
            cluster=cluster),
        rounds=1, iterations=1,
    )
    emit("Co-allocation latency vs demand (simulated)",
         "\n".join(
             f"n={p.n:<4} reservation={p.reservation_s * 1e3:7.1f} ms  "
             f"launch={p.launch_s * 1e3:7.1f} ms  booked={p.booked_hosts}  "
             f"attempts={p.attempts}"
             for p in series.points))
    # Reservation latency is dominated by the RS gather: it must stay
    # within the same order of magnitude across a 12x demand growth
    # (no central bottleneck), and every job must land first try.
    times = series.reservation_series()
    assert max(times) < 10 * min(times)
    assert all(p.attempts == 1 for p in series.points)
    # Booking is capped by the 350-peer overlay.
    assert series.points[-1].booked_hosts == 350


def test_bench_workload_replay(cluster, benchmark):
    """200 simulated seconds of Poisson submissions from three sites."""
    spec = WorkloadSpec(
        arrival_rate_per_s=0.2,
        horizon_s=200.0,
        mixes=(
            JobMix(n=32, strategy="spread", weight=2.0,
                   app=HostnameApp(startup_s=5.0)),
            JobMix(n=64, strategy="concentrate", weight=1.0,
                   app=HostnameApp(startup_s=5.0)),
            JobMix(n=16, r=2, strategy="spread", weight=0.5,
                   app=HostnameApp(startup_s=5.0)),
        ),
        submitters=("grelon-1.nancy", "capricorn-1.lyon",
                    "paravent-1.rennes"),
        max_jobs=40,
    )
    jobs = generate_stream(spec, np.random.default_rng(17))

    stats = benchmark.pedantic(lambda: replay_stream(cluster, jobs),
                               rounds=1, iterations=1)
    emit("Workload replay (Poisson stream, 3 submitters)",
         stats.summary() + "\ncores served by site: "
         + str(dict(sorted(stats.cores_served_by_site().items()))))
    assert stats.n_jobs == len(jobs) > 10
    # The 1040-core grid under ~0.2 jobs/s of 16-64 process jobs is
    # uncongested: everything must eventually be served.
    assert stats.acceptance_rate == 1.0
    assert stats.mean_reservation_s() < 3.0
