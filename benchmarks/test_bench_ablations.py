"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these quantify the knobs behind them:

* latency noise vs. cached-list ranking quality (the §5.1 interleaving
  mechanism and the paper's future-work accuracy item);
* probe count / EWMA smoothing;
* overbooking factor absorbing silent peers;
* replication degree vs. survival (§3.2);
* the block-strategy continuum between spread and concentrate.
"""

from repro.apps import EPBenchmark, ISBenchmark
from repro.experiments.ablations import (
    block_strategy_ablation,
    latency_noise_ablation,
    overbooking_ablation,
    replication_ablation,
    smoothing_ablation,
)

from benchmarks.conftest import emit


def test_bench_noise_ablation(benchmark):
    points = benchmark.pedantic(
        lambda: latency_noise_ablation(
            sigmas_ms=(0.0, 0.35, 0.8, 1.2, 2.5, 5.0), seed=1),
        rounds=1, iterations=1)
    emit("Ablation: per-probe noise vs ranking quality (Kendall tau)",
         "\n".join(f"sigma={p.noise_sigma_ms:>5.2f} ms  tau={p.tau:.4f}"
                   for p in points))
    taus = [p.tau for p in points]
    assert taus == sorted(taus, reverse=True)
    assert taus[0] > 0.7 and taus[-1] < taus[0]


def test_bench_smoothing_ablation(benchmark):
    points = benchmark.pedantic(
        lambda: smoothing_ablation(noise_sigma_ms=2.0,
                                   sample_counts=(1, 3, 10, 30), seed=2),
        rounds=1, iterations=1)
    emit("Ablation: probes per estimate (plain vs EWMA 0.2), sigma=2ms",
         "\n".join(
             f"samples={p.samples:>3} "
             f"{'ewma' if p.ewma_alpha else 'mean':>4} tau={p.tau:.4f}"
             for p in points))
    plain = {p.samples: p.tau for p in points if p.ewma_alpha is None}
    assert plain[30] > plain[1]


def test_bench_overbooking_ablation(benchmark):
    points = benchmark.pedantic(
        lambda: overbooking_ablation(factors=(1.0, 1.1, 1.2, 1.5),
                                     n=120, kill_count=12, seed=3),
        rounds=1, iterations=1)
    emit("Ablation: overbooking factor with 12 freshly-dead peers",
         "\n".join(
             f"factor={p.overbook_factor:.1f} status={p.status:<12} "
             f"dead_detected={p.dead_detected:>3} allocated={p.allocated}"
             for p in points))
    assert points[-1].status == "success"
    assert points[-1].dead_detected > 0


def test_bench_replication_ablation(benchmark):
    points = benchmark.pedantic(
        lambda: replication_ablation(replication_degrees=(1, 2, 3),
                                     p_host_fail=0.05, n=60, seed=1),
        rounds=1, iterations=1)
    emit("Ablation: replication degree vs survival (5% host failures)",
         "\n".join(f"r={p.r}  P(survive)={p.survival:.4f}" for p in points))
    survs = [p.survival for p in points]
    assert survs == sorted(survs)
    assert survs[-1] > 0.98


def test_bench_block_strategy_ablation(cluster, benchmark):
    def run():
        return (block_strategy_ablation(EPBenchmark("B"), n=64,
                                        blocks=(1, 2, 4), seed=5),
                block_strategy_ablation(ISBenchmark("B"), n=64,
                                        blocks=(1, 2, 4), seed=5))

    ep_points, is_points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: block strategy continuum (n=64)",
         "\n".join(
             [f"EP-B block={p.block}: {p.time_s:6.2f} s" for p in ep_points]
             + [f"IS-B block={p.block}: {p.time_s:6.2f} s" for p in is_points]
         ))
    ep = {p.block: p.time_s for p in ep_points}
    is_ = {p.block: p.time_s for p in is_points}
    # EP: less packing = less contention = faster.
    assert ep[1] < ep[4]
    # IS at 64: more packing keeps the job inside nancy = faster.
    assert is_[4] < is_[1]
