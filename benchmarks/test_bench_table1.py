"""Table 1: characteristics of available computing resources.

Regenerates the paper's resource inventory and benchmarks topology
construction (the entry cost of every experiment).
"""

from repro.grid5000.builder import build_topology, paper_site_legend
from repro.grid5000.resources import CLUSTERS, total_cores, total_hosts

from benchmarks.conftest import emit


def render_table1() -> str:
    lines = [f"{'Site':<10}{'Cluster':<12}{'CPU':<20}"
             f"{'#Nodes':>8}{'#CPUs':>8}{'#Cores':>8}"]
    for c in CLUSTERS:
        lines.append(f"{c.site:<10}{c.name:<12}{c.cpu_model:<20}"
                     f"{c.nodes:>8}{c.cpus:>8}{c.cores:>8}")
    lines.append(f"{'TOTAL':<42}{total_hosts():>8}{'':>8}{total_cores():>8}")
    return "\n".join(lines)


def test_bench_table1(benchmark):
    topology = benchmark(build_topology)

    emit("Table 1 (paper: 8 clusters, 350 hosts, 1040 cores)",
         render_table1())
    legend = paper_site_legend(topology)
    emit("Figure legend (RTT to nancy, hosts, cores)",
         "\n".join(f"{site:<10} {rtt:>7.3f} ms {hosts:>4} hosts "
                   f"{cores:>5} cores"
                   for site, rtt, hosts, cores in legend))

    # Paper-fidelity assertions.
    assert topology.n_hosts == 350
    assert topology.n_cores == 1040
    assert len(topology.sites) == 6
    sites = {row[0]: row for row in legend}
    assert sites["sophia"][1] == 17.167
    assert sites["nancy"][2:] == (60, 240)
