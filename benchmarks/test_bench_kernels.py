"""Perf trajectory of the collective-cost kernels (DESIGN.md §11).

Times cell-throughput of the ``kernel="vector"`` path against the
retained scalar ``kernel="reference"`` path on the two campaign hot
paths — the fig4 crossover grid (p=128 layouts) and an
applatency-style grid (up to the paper's 600 ranks) — plus per-kernel
micro rates at p=600, and emits ``benchmarks/BENCH_kernels.json``.

Two-pass protocol so the artifact is CI-comparable:

* **counter pass** — each grid runs exactly once per path on its own
  fresh topology; the deterministic :class:`~repro.mpi.KernelStats`
  work counters (scalar p2p calls, matrix builds, layout builds,
  alltoallv rank vs combo evaluations) and the bit-exact checksum
  agreement are asserted hard, in fast mode too, and are what
  ``bench_trajectory.py`` compares against ``BENCH_baseline.json``;
* **timing pass** — warm repeat rounds produce cells/s and speedups;
  the >= 10x cell-throughput assertion is skipped under
  ``REPRO_BENCH_FAST=1`` (shared CI runners), where timing is
  informational only.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import emit, fast_mode
from repro.cluster import DEFAULT_COST_PARAMS
from repro.grid5000.builder import build_topology
from repro.mpi.costmodel import CollectiveCostModel
import dataclasses

OUT_PATH = Path(__file__).resolve().parent / "BENCH_kernels.json"

#: Message sizes straddling the eager threshold and the IS payload.
FIG4_SIZES = (1024, 8192, 65536, 524288)
APPLAT_SIZES = (1024, 65536)


def _model(kernel):
    """A cost model on a private topology (own layout/matrix memos), so
    each path pays for its own construction work."""
    params = dataclasses.replace(DEFAULT_COST_PARAMS, kernel=kernel)
    return CollectiveCostModel(build_topology(), params)


def _plans(topo, grid):
    nancy = topo.hosts_in_site("nancy")
    lyon = topo.hosts_in_site("lyon")
    if grid == "fig4":
        return {
            "1x128": [h for h in nancy[:32] for _ in range(4)],
            "2x64": ([h for h in nancy[:16] for _ in range(4)]
                     + [h for h in lyon[:16] for _ in range(4)]),
        }
    # applatency: paper-scale site mixes up to 600 ranks (2 procs/host).
    return {
        "64@1site": [h for h in nancy[:32] for _ in range(2)],
        "128@2site": [h for h in (nancy[:32] + lyon[:32])
                      for _ in range(2)],
        "600@6site": (topo.all_hosts() * 2)[:600],
    }


def _price_cell(model, hosts, nbytes):
    """One grid cell: the collective mix an applatency/fig4 evaluation
    prices for a plan shape at one message size."""
    lay = model.layout(hosts)
    total = model.barrier_time(lay)
    total += model.allreduce_time(lay, 4096)
    total += model.bcast_time(lay, nbytes)
    total += model.gather_time(lay, 4096)
    total += model.ring_exchange_time(lay, nbytes)
    total += model.alltoall_time(lay, 4)
    total += model.alltoallv_time(lay, nbytes)
    total += model.alltoallv_transfer_time(lay, nbytes)
    return total


def _run_grid_once(model, plans, sizes):
    checksum = 0.0
    cells = 0
    for hosts in plans.values():
        for nbytes in sizes:
            checksum += _price_cell(model, hosts, nbytes)
            cells += 1
    return checksum, cells


def _time_grid(model, plans, sizes, rounds):
    start = time.perf_counter()
    for _ in range(rounds):
        _run_grid_once(model, plans, sizes)
    seconds = time.perf_counter() - start
    cells = rounds * sum(len(sizes) for _ in plans)
    return seconds, cells


def _grid_report(grid, sizes, timing_rounds):
    vec = _model("vector")
    ref = _model("reference")
    plans_v = _plans(vec.topology, grid)
    plans_r = _plans(ref.topology, grid)

    # Counter pass: exactly one traversal, deterministic stats.
    sum_v, cells = _run_grid_once(vec, plans_v, sizes)
    sum_r, _ = _run_grid_once(ref, plans_r, sizes)
    assert sum_v == sum_r, (
        f"{grid}: vector checksum {sum_v!r} != reference {sum_r!r}")
    stats_v = vec.stats.as_dict()
    stats_r = ref.stats.as_dict()
    assert stats_v["p2p_calls"] == 0
    assert stats_r["p2p_calls"] > 0
    # Every edge the reference prices scalar-ly is priced by a matrix
    # reduction on the vector path.
    assert stats_v["p2p_edges_vectorized"] == stats_r["p2p_calls"]
    assert stats_v["layout_builds"] == len(plans_v)
    assert stats_v["layout_cache_hits"] == cells - len(plans_v)
    assert 0 < stats_v["alltoallv_combo_evals"] < \
        stats_r["alltoallv_rank_evals"]

    # Timing pass: warm rounds (memos populated), informational in CI.
    sec_v, timed_cells = _time_grid(vec, plans_v, sizes, timing_rounds)
    sec_r, _ = _time_grid(ref, plans_r, sizes, timing_rounds)
    speedup = (sec_r / sec_v) if sec_v > 0 else float("inf")
    return {
        "cells": cells,
        "timing_rounds": timing_rounds,
        "checksum_equal": True,
        "p2p_calls_avoided": stats_r["p2p_calls"] - stats_v["p2p_calls"],
        "vector": {"stats": stats_v, "seconds": sec_v,
                   "cells_per_s": timed_cells / sec_v if sec_v else None},
        "reference": {"stats": stats_r, "seconds": sec_r,
                      "cells_per_s": timed_cells / sec_r if sec_r else None},
        "speedup": speedup,
    }


def _kernel_micro_report(reps):
    vec = _model("vector")
    ref = _model("reference")
    hosts_v = _plans(vec.topology, "applatency")["600@6site"]
    hosts_r = _plans(ref.topology, "applatency")["600@6site"]
    lay_v = vec.layout(hosts_v)
    lay_r = ref.layout(hosts_r)
    kernels = {
        "barrier": lambda m, l: m.barrier_time(l),
        "bcast": lambda m, l: m.bcast_time(l, 65536),
        "allreduce": lambda m, l: m.allreduce_time(l, 4096),
        "gather": lambda m, l: m.gather_time(l, 4096),
        "ring_exchange": lambda m, l: m.ring_exchange_time(l, 8192),
        "alltoallv": lambda m, l: m.alltoallv_time(l, 65536),
        "alltoallv_wire": lambda m, l: m.alltoallv_transfer_time(l, 65536),
    }
    out = {}
    for name, fn in kernels.items():
        assert fn(vec, lay_v) == fn(ref, lay_r), f"{name} drifted"
        rates = {}
        for label, model, lay in (("vector", vec, lay_v),
                                  ("reference", ref, lay_r)):
            start = time.perf_counter()
            for _ in range(reps):
                fn(model, lay)
            sec = time.perf_counter() - start
            rates[label] = reps / sec if sec > 0 else None
        speedup = (rates["vector"] / rates["reference"]
                   if rates["vector"] and rates["reference"] else None)
        out[name] = {"p": 600,
                     "vector_calls_per_s": rates["vector"],
                     "reference_calls_per_s": rates["reference"],
                     "speedup": speedup}
    return out


def test_kernel_perf_trajectory():
    fast = fast_mode()
    grid_rounds = 1 if fast else 5
    micro_reps = 1 if fast else 20

    report = {
        "schema": "bench-kernels/v1",
        "fast_mode": fast,
        "grids": {
            "fig4": _grid_report("fig4", FIG4_SIZES, grid_rounds),
            "applatency": _grid_report("applatency", APPLAT_SIZES,
                                       grid_rounds),
        },
        "kernels": _kernel_micro_report(micro_reps),
    }

    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")

    lines = []
    for grid, row in report["grids"].items():
        lines.append(
            f"{grid:<12} cells={row['cells']:>3} "
            f"vector={row['vector']['cells_per_s']:>10.1f} cells/s  "
            f"reference={row['reference']['cells_per_s']:>8.1f} cells/s  "
            f"speedup={row['speedup']:>6.1f}x  "
            f"p2p_avoided={row['p2p_calls_avoided']}")
    for name, row in report["kernels"].items():
        lines.append(
            f"  {name:<15} p=600 {row['vector_calls_per_s']:>10.1f}/s vs "
            f"{row['reference_calls_per_s']:>8.1f}/s  "
            f"({row['speedup']:.1f}x)")
    emit("kernel perf trajectory -> BENCH_kernels.json", "\n".join(lines))

    if not fast:
        # The ISSUE acceptance bar: an order of magnitude on the grid
        # hot path.  Timing-based, so local/slow-lane only.
        for grid, row in report["grids"].items():
            assert row["speedup"] >= 10.0, (
                f"{grid}: vector speedup {row['speedup']:.1f}x < 10x")
