"""Figure 4 left: NAS EP class B execution times, 32..512 processes.

Shape criteria (from §5.2):

* spread is faster than concentrate at moderate scales (32..128) —
  memory contention on concentrate's packed quad-cores outweighs the
  WAN collectives ("probably due to the intensive memory accesses");
* the two strategies converge ("reach an equilibrium") by 512;
* both curves decrease with n (EP is compute bound);
* absolute times sit in the paper's 1-10 s band.
"""

from repro.apps import EPBenchmark
from repro.experiments.applications import (
    EP_PROCESS_COUNTS,
    run_application_experiment,
)
from repro.experiments.report import format_series_table

from benchmarks.conftest import emit


def test_bench_fig4_ep(cluster, benchmark):
    series = benchmark.pedantic(
        lambda: run_application_experiment(
            EPBenchmark("B"), process_counts=EP_PROCESS_COUNTS,
            cluster=cluster),
        rounds=1, iterations=1,
    )

    emit("Figure 4 left: EP class B total time (s)",
         format_series_table(series, title="EP-B n"))

    spread, conc = series["spread"], series["concentrate"]
    # spread <= concentrate while contention dominates.
    for n in (32, 64, 128):
        assert spread.time_at(n) <= conc.time_at(n) * 1.1, f"n={n}"
    # equilibrium at scale.
    for n in (256, 512):
        ratio = spread.time_at(n) / conc.time_at(n)
        assert 0.6 < ratio < 1.5, f"n={n}: ratio={ratio:.2f}"
    # compute-bound scaling.
    assert spread.is_monotone_decreasing(0.10)
    assert conc.is_monotone_decreasing(0.10)
    # paper band (1..10 s across the sweep).
    for s in (spread, conc):
        assert 0.5 < min(s.times) and max(s.times) < 12.0
