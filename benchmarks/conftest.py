"""Benchmark fixtures: one booted Grid'5000 per session.

Every benchmark prints the regenerated paper table/series to stdout
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
asserts the paper's qualitative claims, so a passing benchmark run *is*
a successful reproduction.
"""

from __future__ import annotations

import pytest

from repro.cluster import build_grid5000_cluster


@pytest.fixture(scope="session")
def cluster():
    """The paper's testbed, booted once for the whole benchmark run."""
    return build_grid5000_cluster(seed=42)


def emit(title: str, body: str) -> None:
    print(f"\n=== {title} ===")
    print(body)
