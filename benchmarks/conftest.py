"""Benchmark fixtures: one booted Grid'5000 per session.

Every benchmark prints the regenerated paper table/series to stdout
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
asserts the paper's qualitative claims, so a passing benchmark run *is*
a successful reproduction.

Fast mode
---------
``REPRO_BENCH_FAST=1`` (what CI sets) turns the run into a correctness
pass: pytest-benchmark timing is force-disabled (every benchmark body
executes exactly once, all reproduction assertions still fire) and
wall-clock *ratio* assertions are skipped via :func:`fast_mode` —
shared CI runners make timing comparisons meaningless, but a silently
rotting benchmark file still fails loudly here.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import build_grid5000_cluster


def fast_mode() -> bool:
    """True when REPRO_BENCH_FAST asks for the timing-free CI pass."""
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def pytest_configure(config) -> None:
    if fast_mode() and hasattr(config.option, "benchmark_disable"):
        config.option.benchmark_disable = True


@pytest.fixture(scope="session")
def cluster():
    """The paper's testbed, booted once for the whole benchmark run."""
    return build_grid5000_cluster(seed=42)


def emit(title: str, body: str) -> None:
    print(f"\n=== {title} ===")
    print(body)
