"""Compare a fresh ``BENCH_kernels.json`` against the committed baseline.

CI runs this after the benchmark lane::

    python benchmarks/bench_trajectory.py \
        benchmarks/BENCH_kernels.json benchmarks/BENCH_baseline.json

Policy (ISSUE 6 / DESIGN.md §11):

* **work counters are hard**: the counter pass is deterministic
  (single traversal per grid, independent of timing rounds and of
  ``REPRO_BENCH_FAST``), so any *increase* in the vector path's work —
  scalar p2p calls creeping back in, extra matrix or layout builds,
  lost memo hits, alltoallv de-duplication degrading — or any drop in
  ``p2p_calls_avoided`` fails the build with exit code 1;
* **timing is informational**: cells/s and speedups depend on the
  runner, so they are printed as ratios against the baseline but never
  fail the build.

Counters where *less* is better (creep up => regression) are listed in
``LOWER_IS_BETTER``; ``HIGHER_IS_BETTER`` covers memo hits and the
avoided-call headline, where a *decrease* is the regression.
"""

from __future__ import annotations

import json
import sys

#: Vector-path work counters that must not grow.
LOWER_IS_BETTER = (
    "p2p_calls",
    "pairwise_builds",
    "layout_builds",
    "alltoallv_rank_evals",
    "alltoallv_combo_evals",
)
#: Vector-path counters that must not shrink.
HIGHER_IS_BETTER = (
    "p2p_edges_vectorized",
    "pairwise_hits",
    "layout_cache_hits",
)


def compare(current: dict, baseline: dict) -> list:
    """Return a list of human-readable hard failures (empty = pass)."""
    failures = []
    for grid, base_row in sorted(baseline.get("grids", {}).items()):
        cur_row = current.get("grids", {}).get(grid)
        if cur_row is None:
            failures.append(f"{grid}: grid missing from current run")
            continue
        if cur_row["cells"] != base_row["cells"]:
            # Grid reshaped: counters are not comparable; require a
            # baseline refresh rather than silently passing.
            failures.append(
                f"{grid}: cell count changed "
                f"{base_row['cells']} -> {cur_row['cells']} "
                "(refresh BENCH_baseline.json in the same PR)")
            continue
        cur, base = cur_row["vector"]["stats"], base_row["vector"]["stats"]
        for key in LOWER_IS_BETTER:
            if cur.get(key, 0) > base.get(key, 0):
                failures.append(
                    f"{grid}: vector {key} regressed "
                    f"{base.get(key, 0)} -> {cur.get(key, 0)}")
        for key in HIGHER_IS_BETTER:
            if cur.get(key, 0) < base.get(key, 0):
                failures.append(
                    f"{grid}: vector {key} dropped "
                    f"{base.get(key, 0)} -> {cur.get(key, 0)}")
        if cur_row["p2p_calls_avoided"] < base_row["p2p_calls_avoided"]:
            failures.append(
                f"{grid}: p2p_calls_avoided dropped "
                f"{base_row['p2p_calls_avoided']} -> "
                f"{cur_row['p2p_calls_avoided']}")
    return failures


def _ratio(cur, base):
    if not cur or not base:
        return "n/a"
    return f"{cur / base:.2f}x"


def report_timing(current: dict, baseline: dict) -> None:
    print("timing trajectory (informational, runner-dependent):")
    for grid, base_row in sorted(baseline.get("grids", {}).items()):
        cur_row = current.get("grids", {}).get(grid)
        if cur_row is None:
            continue
        cur_cps = cur_row["vector"].get("cells_per_s")
        base_cps = base_row["vector"].get("cells_per_s")
        print(f"  {grid:<12} vector {cur_cps and round(cur_cps, 1)} cells/s "
              f"vs baseline {base_cps and round(base_cps, 1)} "
              f"({_ratio(cur_cps, base_cps)}); "
              f"speedup vs reference {cur_row['speedup']:.1f}x "
              f"(baseline {base_row['speedup']:.1f}x)")
    for name, base_row in sorted(baseline.get("kernels", {}).items()):
        cur_row = current.get("kernels", {}).get(name)
        if cur_row is None:
            continue
        print(f"  {name:<15} vector "
              f"{_ratio(cur_row.get('vector_calls_per_s'), base_row.get('vector_calls_per_s'))} "
              f"of baseline rate; speedup {cur_row.get('speedup'):.1f}x")


def main(argv: list) -> int:
    cur_path = argv[1] if len(argv) > 1 else "benchmarks/BENCH_kernels.json"
    base_path = (argv[2] if len(argv) > 2
                 else "benchmarks/BENCH_baseline.json")
    with open(cur_path) as fh:
        current = json.load(fh)
    with open(base_path) as fh:
        baseline = json.load(fh)
    if current.get("schema") != baseline.get("schema"):
        print(f"schema mismatch: {current.get('schema')} vs "
              f"{baseline.get('schema')} (refresh the baseline)")
        return 1
    failures = compare(current, baseline)
    report_timing(current, baseline)
    if failures:
        print("\nHARD counter regressions vs BENCH_baseline.json:")
        for line in failures:
            print(f"  FAIL {line}")
        return 1
    print("\ncounter trajectory OK: no vector-path work regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
