"""Multi-user contention at testbed scale (extension bench).

§4's motivation — "the grid is a multi-user platform" — exercised end
to end: three users at different sites submit 150-process jobs
simultaneously.  The hash-keyed reservations plus ``J=1`` gatekeeping
must keep concurrently-running allocations host-disjoint, with booking
retries resolving the races.
"""

from repro.experiments.multiuser import run_multiuser_experiment

from benchmarks.conftest import emit


def test_bench_multiuser_contention(cluster, benchmark):
    submitters = ["grelon-1.nancy", "capricorn-1.lyon", "paravent-1.rennes"]

    outcome = benchmark.pedantic(
        lambda: run_multiuser_experiment(
            cluster, submitters=submitters, n=150, strategy="spread"),
        rounds=1, iterations=1,
    )

    lines = []
    for submitter in submitters:
        result = outcome.results[submitter]
        sites = (dict(sorted(result.plan.cores_by_site().items()))
                 if result.plan else {})
        lines.append(f"{submitter:<22} {result.status.value:<10} "
                     f"attempts={result.attempts} {sites}")
    emit("Multi-user: 3 concurrent 150-process spread jobs", "\n".join(lines))

    assert set(outcome.statuses.values()) == {"success"}
    assert outcome.concurrent_overlaps() == []
    # 450 processes co-allocated across 350 hosts without a central
    # scheduler: total placed cores must match total demand.
    total = sum(sum(r.plan.cores_by_site().values())
                for r in outcome.results.values())
    assert total == 450
