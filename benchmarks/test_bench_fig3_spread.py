"""Figure 3: *spread* — allocated hosts (left) and cores (right) per
site, for 100..600 demanded processes.

Shape criteria (from §5.1):

* one process per host while hosts remain (hosts == demand <= 350);
* four closest sites dominate up to 250; all six sites from 300;
* the nancy cores series makes a stair at 400 (350 hosts exhausted,
  closest peers take a second process);
* all 350 peers are in use beyond 350 demanded.
"""

from repro.experiments.coallocation import (
    PAPER_DEMANDS,
    run_coallocation_experiment,
)
from repro.experiments.report import format_site_table

from benchmarks.conftest import emit


def test_bench_fig3_spread(cluster, benchmark):
    series = benchmark.pedantic(
        lambda: run_coallocation_experiment(
            demands=PAPER_DEMANDS, strategies=("spread",),
            cluster=cluster)["spread"],
        rounds=1, iterations=1,
    )

    emit("Figure 3 left: spread, allocated hosts per site",
         format_site_table(series, value="hosts"))
    emit("Figure 3 right: spread, allocated cores per site",
         format_site_table(series, value="cores"))

    # -- §5.1 shape assertions ------------------------------------------------
    for n in (100, 150, 200, 250, 300, 350):
        assert series.point(n).total_hosts == n, f"1/host violated at {n}"
    pt250 = series.point(250)
    four = (pt250.cores("nancy") + pt250.cores("lyon")
            + pt250.cores("rennes") + pt250.cores("bordeaux"))
    assert four >= 240 and pt250.cores("sophia") == 0
    assert len(series.point(300).sites_used) == 6
    # The stair: 60 -> 110 -> 120 nancy cores at 300/400/450+.
    assert series.point(300).cores("nancy") == 60
    assert series.point(400).cores("nancy") == 110
    assert series.point(450).cores("nancy") == 120
    for n in (400, 450, 500, 550, 600):
        assert sum(series.point(n).hosts_by_site.values()) == 350
    for pt in series.points:
        assert sum(pt.cores_by_site.values()) == pt.n
