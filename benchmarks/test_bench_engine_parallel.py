"""Engine campaign: fig2 + fig3 + fig4 through the sweep engine.

Demonstrates the three engine properties the refactor buys:

* fan-out: the campaign's 38 cells run across worker processes
  (``jobs=4``) instead of one long for-loop — measurably faster than
  the serial pass wherever more than one core exists;
* determinism: serial and parallel runs persist byte-identical
  result-store files (per-cell seeds derived from the master seed);
* replay: a second invocation executes zero cells and returns the
  stored campaign orders of magnitude faster.
"""

import os
import time

from repro.apps import EPBenchmark, ISBenchmark
from repro.experiments.applications import application_spec, application_sweep
from repro.experiments.coallocation import coallocation_spec, coallocation_sweep
from repro.experiments.engine import ResultStore

from benchmarks.conftest import emit, fast_mode

SEED = 42


def campaign_specs():
    return [
        (coallocation_sweep,
         coallocation_spec(seed=SEED, strategies=("concentrate",),
                           name="fig2")),
        (coallocation_sweep,
         coallocation_spec(seed=SEED, strategies=("spread",), name="fig3")),
        (application_sweep, application_spec(EPBenchmark("B"), seed=SEED)),
        (application_sweep, application_spec(ISBenchmark("B"), seed=SEED)),
    ]


def run_campaign(jobs, store):
    return [run(spec=spec, jobs=jobs, store=store)
            for run, spec in campaign_specs()]


def test_bench_engine_parallel(tmp_path, benchmark):
    serial_store = ResultStore(tmp_path / "serial")
    t0 = time.perf_counter()
    serial = run_campaign(1, serial_store)
    serial_s = time.perf_counter() - t0

    parallel_store = ResultStore(tmp_path / "parallel")
    parallel = benchmark.pedantic(
        lambda: run_campaign(4, parallel_store), rounds=1, iterations=1)
    parallel_s = sum(s.elapsed_s for s in parallel)

    t0 = time.perf_counter()
    replay = run_campaign(4, parallel_store)
    replay_s = time.perf_counter() - t0

    emit("Engine campaign fig2+fig3+fig4 (38 cells)",
         f"serial(jobs=1):   {serial_s:6.2f} s\n"
         f"parallel(jobs=4): {parallel_s:6.2f} s on {os.cpu_count()} cpus\n"
         f"cached replay:    {replay_s:6.2f} s")

    # Every sweep computed once, fully.
    for sweep in serial + parallel:
        assert sweep.executed == sweep.spec.cell_count()
    # Serial and parallel stores are byte-identical per experiment.
    for _, spec in campaign_specs():
        assert (serial_store.path_for(spec).read_bytes()
                == parallel_store.path_for(spec).read_bytes())
    # The replay came entirely from the store, much faster than a run.
    assert all(s.executed == 0 for s in replay)
    assert sum(s.cached for s in replay) == 38
    # Wall-clock ratios are meaningless on shared CI runners.
    if not fast_mode():
        assert replay_s < serial_s / 10
        # Fan-out only wins wall-clock when there is hardware to fan onto.
        if (os.cpu_count() or 1) >= 4:
            assert parallel_s < serial_s
